//! Declassifiers and endorsers: trusted gateways between security-context domains.
//!
//! Fig. 3 of the paper: an entity changing its security context is a *declassifier*
//! when it relaxes secrecy constraints and an *endorser* when it asserts integrity
//! constraints. They "can be seen as trusted gateways between security context domains,
//! where IFC constraints would otherwise prohibit a direct flow" — e.g. medical data may
//! only flow to a research domain after passing through a declassifier that applies an
//! approved anonymisation algorithm (Fig. 6), and non-standard device data may only
//! reach the hospital analyser through an input sanitiser that endorses it (Fig. 5).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::entity::Entity;
use crate::error::IfcError;
use crate::flow::can_flow;
use crate::privilege::PrivilegeKind;
use crate::tag::{SecurityContext, Tag};

/// The kind of context change a gateway performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GatewayKind {
    /// Relaxes secrecy (removes and/or replaces secrecy tags): e.g. an anonymiser.
    Declassifier,
    /// Asserts integrity (adds integrity tags after validation): e.g. an input sanitiser.
    Endorser,
    /// Performs both secrecy and integrity changes.
    Both,
}

impl fmt::Display for GatewayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GatewayKind::Declassifier => write!(f, "declassifier"),
            GatewayKind::Endorser => write!(f, "endorser"),
            GatewayKind::Both => write!(f, "declassifier+endorser"),
        }
    }
}

/// The approved transformation a gateway applies to data passing through it.
///
/// The paper requires that declassification/endorsement is bound to an explicit,
/// auditable operation (an "approved algorithm"), not a silent relabel; audit records
/// carry this name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transformation {
    /// The name of the approved algorithm, e.g. `k-anonymise(k=5)` or
    /// `convert-to-hospital-format`.
    pub algorithm: String,
    /// Secrecy tags removed from data passing through.
    pub secrecy_removed: Vec<Tag>,
    /// Secrecy tags added to data passing through.
    pub secrecy_added: Vec<Tag>,
    /// Integrity tags removed from data passing through.
    pub integrity_removed: Vec<Tag>,
    /// Integrity tags added (endorsed) on data passing through.
    pub integrity_added: Vec<Tag>,
}

impl Transformation {
    /// Creates a transformation with the given algorithm name and no label changes.
    pub fn named(algorithm: impl Into<String>) -> Self {
        Transformation {
            algorithm: algorithm.into(),
            secrecy_removed: Vec::new(),
            secrecy_added: Vec::new(),
            integrity_removed: Vec::new(),
            integrity_added: Vec::new(),
        }
    }

    /// Adds a secrecy tag removal to the transformation.
    pub fn removing_secrecy(mut self, tag: impl Into<Tag>) -> Self {
        self.secrecy_removed.push(tag.into());
        self
    }

    /// Adds a secrecy tag addition to the transformation.
    pub fn adding_secrecy(mut self, tag: impl Into<Tag>) -> Self {
        self.secrecy_added.push(tag.into());
        self
    }

    /// Adds an integrity tag removal to the transformation.
    pub fn removing_integrity(mut self, tag: impl Into<Tag>) -> Self {
        self.integrity_removed.push(tag.into());
        self
    }

    /// Adds an integrity tag addition (endorsement) to the transformation.
    pub fn adding_integrity(mut self, tag: impl Into<Tag>) -> Self {
        self.integrity_added.push(tag.into());
        self
    }

    /// Applies the transformation to a security context, producing the output context.
    pub fn apply(&self, input: &SecurityContext) -> SecurityContext {
        let mut out = input.clone();
        for t in &self.secrecy_removed {
            out.secrecy_mut().remove(t);
        }
        for t in &self.secrecy_added {
            out.secrecy_mut().insert(t.clone());
        }
        for t in &self.integrity_removed {
            out.integrity_mut().remove(t);
        }
        for t in &self.integrity_added {
            out.integrity_mut().insert(t.clone());
        }
        out
    }

    /// The privileges an entity must hold to perform this transformation on itself.
    pub fn required_privileges(&self) -> Vec<(Tag, PrivilegeKind)> {
        let mut req = Vec::new();
        for t in &self.secrecy_removed {
            req.push((t.clone(), PrivilegeKind::SecrecyRemove));
        }
        for t in &self.secrecy_added {
            req.push((t.clone(), PrivilegeKind::SecrecyAdd));
        }
        for t in &self.integrity_removed {
            req.push((t.clone(), PrivilegeKind::IntegrityRemove));
        }
        for t in &self.integrity_added {
            req.push((t.clone(), PrivilegeKind::IntegrityAdd));
        }
        req
    }
}

/// A trusted gateway: an entity plus the input context it reads in, the output context
/// it writes out, and the approved transformation connecting them.
///
/// ```
/// use legaliot_ifc::{Entity, Gateway, GatewayKind, SecurityContext, Transformation,
///                    PrivilegeKind, Tag};
///
/// // Fig. 5: the input sanitiser reads Zeb's non-standard data and endorses it.
/// let input = SecurityContext::from_names(["medical", "zeb"], ["zeb-dev", "consent"]);
/// let output = SecurityContext::from_names(["medical", "zeb"], ["hosp-dev", "consent"]);
/// let mut sanitiser = Entity::active("input-sanitiser", input.clone());
/// sanitiser.privileges_mut().grant(Tag::new("hosp-dev"), PrivilegeKind::IntegrityAdd);
/// sanitiser.privileges_mut().grant(Tag::new("zeb-dev"), PrivilegeKind::IntegrityRemove);
///
/// let transformation = Transformation::named("convert-to-hospital-format")
///     .removing_integrity("zeb-dev")
///     .adding_integrity("hosp-dev");
/// let gateway = Gateway::new(sanitiser, transformation, output).unwrap();
/// assert_eq!(gateway.kind(), GatewayKind::Endorser);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gateway {
    entity: Entity,
    transformation: Transformation,
    output_context: SecurityContext,
}

impl Gateway {
    /// Builds a gateway from an entity, its approved transformation, and the expected
    /// output context.
    ///
    /// # Errors
    ///
    /// * [`IfcError::GatewayNotPrivileged`] if the entity does not hold every privilege
    ///   the transformation requires.
    /// * [`IfcError::GatewayNotPrivileged`] if applying the transformation to the
    ///   entity's context does not yield `output_context` (the declared output would be
    ///   unreachable, so the gateway definition is inconsistent).
    pub fn new(
        entity: Entity,
        transformation: Transformation,
        output_context: SecurityContext,
    ) -> Result<Self, IfcError> {
        for (tag, kind) in transformation.required_privileges() {
            if !entity.privileges().permits(&tag, kind) {
                return Err(IfcError::GatewayNotPrivileged {
                    gateway: entity.name().to_string(),
                    detail: format!("requires {kind} privilege over tag `{tag}`"),
                });
            }
        }
        let produced = transformation.apply(entity.context());
        if produced != output_context {
            return Err(IfcError::GatewayNotPrivileged {
                gateway: entity.name().to_string(),
                detail: format!(
                    "transformation yields {produced} but gateway declares output {output_context}"
                ),
            });
        }
        Ok(Gateway { entity, transformation, output_context })
    }

    /// The underlying entity.
    pub fn entity(&self) -> &Entity {
        &self.entity
    }

    /// The input security context (the entity's context).
    pub fn input_context(&self) -> &SecurityContext {
        self.entity.context()
    }

    /// The output security context after transformation.
    pub fn output_context(&self) -> &SecurityContext {
        &self.output_context
    }

    /// The approved transformation.
    pub fn transformation(&self) -> &Transformation {
        &self.transformation
    }

    /// Classifies the gateway by the kind of label change it performs.
    pub fn kind(&self) -> GatewayKind {
        let t = &self.transformation;
        let secrecy = !t.secrecy_removed.is_empty() || !t.secrecy_added.is_empty();
        let integrity = !t.integrity_removed.is_empty() || !t.integrity_added.is_empty();
        match (secrecy, integrity) {
            (true, true) => GatewayKind::Both,
            (true, false) => GatewayKind::Declassifier,
            _ => GatewayKind::Endorser,
        }
    }

    /// Whether this gateway bridges a flow from `source` to `destination` that would
    /// otherwise be denied: i.e. `source → gateway-input` and `gateway-output →
    /// destination` are both allowed.
    pub fn bridges(&self, source: &SecurityContext, destination: &SecurityContext) -> bool {
        can_flow(source, self.input_context()).is_allowed()
            && can_flow(&self.output_context, destination).is_allowed()
    }
}

/// Convenience alias used in scenario code for gateways that relax secrecy.
pub type Declassifier = Gateway;
/// Convenience alias used in scenario code for gateways that assert integrity.
pub type Endorser = Gateway;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    fn sanitiser_gateway() -> Gateway {
        let input = ctx(&["medical", "zeb"], &["zeb-dev", "consent"]);
        let output = ctx(&["medical", "zeb"], &["hosp-dev", "consent"]);
        let mut e = Entity::active("input-sanitiser", input);
        e.privileges_mut().grant("hosp-dev", PrivilegeKind::IntegrityAdd);
        e.privileges_mut().grant("zeb-dev", PrivilegeKind::IntegrityRemove);
        let t = Transformation::named("convert-to-hospital-format")
            .removing_integrity("zeb-dev")
            .adding_integrity("hosp-dev");
        Gateway::new(e, t, output).unwrap()
    }

    fn anonymiser_gateway() -> Gateway {
        // Fig. 6: the statistics generator reads all patients' data, anonymises, and
        // outputs into the stats/anon domain.
        let input = ctx(&["medical", "ann", "zeb"], &["hosp-dev", "consent"]);
        let output = ctx(&["medical", "stats"], &["anon"]);
        let mut e = Entity::active("stats-generator", input);
        for (t, k) in [
            ("ann", PrivilegeKind::SecrecyRemove),
            ("zeb", PrivilegeKind::SecrecyRemove),
            ("stats", PrivilegeKind::SecrecyAdd),
            ("hosp-dev", PrivilegeKind::IntegrityRemove),
            ("consent", PrivilegeKind::IntegrityRemove),
            ("anon", PrivilegeKind::IntegrityAdd),
        ] {
            e.privileges_mut().grant(t, k);
        }
        let t = Transformation::named("k-anonymise")
            .removing_secrecy("ann")
            .removing_secrecy("zeb")
            .adding_secrecy("stats")
            .removing_integrity("hosp-dev")
            .removing_integrity("consent")
            .adding_integrity("anon");
        Gateway::new(e, t, output).unwrap()
    }

    #[test]
    fn endorser_classification_and_bridge() {
        let g = sanitiser_gateway();
        assert_eq!(g.kind(), GatewayKind::Endorser);
        let zeb_sensor = ctx(&["medical", "zeb"], &["zeb-dev", "consent"]);
        let zeb_analyser = ctx(&["medical", "zeb"], &["hosp-dev", "consent"]);
        // Direct flow is denied (Fig. 4)…
        assert!(can_flow(&zeb_sensor, &zeb_analyser).is_denied());
        // …but the sanitiser bridges it (Fig. 5).
        assert!(g.bridges(&zeb_sensor, &zeb_analyser));
    }

    #[test]
    fn declassifier_classification_and_bridge() {
        let g = anonymiser_gateway();
        assert_eq!(g.kind(), GatewayKind::Both);
        let ann_sensor = ctx(&["medical", "ann"], &["hosp-dev", "consent"]);
        let ward_manager = ctx(&["medical", "stats"], &["anon"]);
        assert!(can_flow(&ann_sensor, &ward_manager).is_denied());
        // The ward manager cannot read individual patient data directly, but the
        // anonymising statistics generator bridges the flow.
        assert!(g.bridges(&ann_sensor, &ward_manager));
    }

    #[test]
    fn gateway_requires_privileges() {
        let input = ctx(&["medical"], &[]);
        let output = ctx(&[], &[]);
        let e = Entity::active("unprivileged", input);
        let t = Transformation::named("strip-medical").removing_secrecy("medical");
        let err = Gateway::new(e, t, output).unwrap_err();
        assert!(matches!(err, IfcError::GatewayNotPrivileged { .. }));
    }

    #[test]
    fn gateway_output_must_match_transformation() {
        let input = ctx(&["medical"], &[]);
        let wrong_output = ctx(&["medical"], &[]); // strip-medical would remove the tag
        let mut e = Entity::active("anonymiser", input);
        e.privileges_mut().grant("medical", PrivilegeKind::SecrecyRemove);
        let t = Transformation::named("strip-medical").removing_secrecy("medical");
        assert!(Gateway::new(e, t, wrong_output).is_err());
    }

    #[test]
    fn transformation_apply_is_pure() {
        let t = Transformation::named("anon").removing_secrecy("ann").adding_secrecy("stats");
        let input = ctx(&["medical", "ann"], &["consent"]);
        let out = t.apply(&input);
        assert!(out.secrecy().contains_name("stats"));
        assert!(!out.secrecy().contains_name("ann"));
        assert!(out.integrity().contains_name("consent"));
        // Input unchanged.
        assert!(input.secrecy().contains_name("ann"));
    }

    #[test]
    fn required_privileges_cover_all_changes() {
        let t = Transformation::named("x")
            .removing_secrecy("a")
            .adding_secrecy("b")
            .removing_integrity("c")
            .adding_integrity("d");
        let req = t.required_privileges();
        assert_eq!(req.len(), 4);
        assert!(req.contains(&(Tag::new("a"), PrivilegeKind::SecrecyRemove)));
        assert!(req.contains(&(Tag::new("b"), PrivilegeKind::SecrecyAdd)));
        assert!(req.contains(&(Tag::new("c"), PrivilegeKind::IntegrityRemove)));
        assert!(req.contains(&(Tag::new("d"), PrivilegeKind::IntegrityAdd)));
    }

    #[test]
    fn gateway_kind_display() {
        assert_eq!(GatewayKind::Declassifier.to_string(), "declassifier");
        assert_eq!(GatewayKind::Endorser.to_string(), "endorser");
        assert_eq!(GatewayKind::Both.to_string(), "declassifier+endorser");
    }

    proptest! {
        /// Gateway soundness: a gateway can never be constructed whose entity lacks a
        /// privilege required by its transformation.
        #[test]
        fn prop_gateway_requires_all_privileges(
            grant_subset in proptest::collection::vec(proptest::bool::ANY, 4),
        ) {
            let input = ctx(&["a"], &["b"]);
            let t = Transformation::named("t")
                .removing_secrecy("a")
                .adding_secrecy("c")
                .removing_integrity("b")
                .adding_integrity("d");
            let needed = t.required_privileges();
            let mut e = Entity::active("g", input);
            let mut all_granted = true;
            for (idx, (tag, kind)) in needed.iter().enumerate() {
                if grant_subset[idx % grant_subset.len()] {
                    e.privileges_mut().grant(tag.clone(), *kind);
                } else {
                    all_granted = false;
                }
            }
            let output = t.apply(e.context());
            let result = Gateway::new(e, t, output);
            prop_assert_eq!(result.is_ok(), all_granted);
        }

        /// Bridging property: if a gateway bridges source→destination then composing
        /// the two hops is exactly source→input and output→destination both allowed.
        #[test]
        fn prop_bridge_definition(extra in "[e-h]{1,2}") {
            let g = sanitiser_gateway();
            let src = ctx(&["medical", "zeb"], &["zeb-dev", "consent"]);
            let mut dst = ctx(&["medical", "zeb"], &["hosp-dev", "consent"]);
            dst.secrecy_mut().insert(Tag::new(&extra));
            let bridged = g.bridges(&src, &dst);
            let expected = can_flow(&src, g.input_context()).is_allowed()
                && can_flow(g.output_context(), &dst).is_allowed();
            prop_assert_eq!(bridged, expected);
        }
    }
}
