//! Privileges for label change and tag ownership.
//!
//! In addition to its two labels, an active entity may hold privileges to **add** or
//! **remove** specific tags to/from its secrecy or integrity labels (§6, "Privileges for
//! label change"). Created entities inherit labels but *never* privileges — privileges
//! must be passed explicitly, and only by a tag's owner (§6, "Tag Ownership").

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::label::Label;
use crate::tag::Tag;

/// The four kinds of label-change privilege an active entity may hold for a tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PrivilegeKind {
    /// May add the tag to its secrecy label (raise its own secrecy).
    SecrecyAdd,
    /// May remove the tag from its secrecy label — the *declassification* privilege.
    SecrecyRemove,
    /// May add the tag to its integrity label — the *endorsement* privilege.
    IntegrityAdd,
    /// May remove the tag from its integrity label.
    IntegrityRemove,
}

impl PrivilegeKind {
    /// All four privilege kinds.
    pub const ALL: [PrivilegeKind; 4] = [
        PrivilegeKind::SecrecyAdd,
        PrivilegeKind::SecrecyRemove,
        PrivilegeKind::IntegrityAdd,
        PrivilegeKind::IntegrityRemove,
    ];

    /// Whether this privilege targets the secrecy label.
    pub fn is_secrecy(self) -> bool {
        matches!(self, PrivilegeKind::SecrecyAdd | PrivilegeKind::SecrecyRemove)
    }

    /// Whether this privilege permits adding a tag (as opposed to removing it).
    pub fn is_add(self) -> bool {
        matches!(self, PrivilegeKind::SecrecyAdd | PrivilegeKind::IntegrityAdd)
    }
}

impl fmt::Display for PrivilegeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivilegeKind::SecrecyAdd => "secrecy+",
            PrivilegeKind::SecrecyRemove => "secrecy-",
            PrivilegeKind::IntegrityAdd => "integrity+",
            PrivilegeKind::IntegrityRemove => "integrity-",
        };
        f.write_str(s)
    }
}

/// A single (tag, kind) privilege grant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Privilege {
    /// The tag the privilege applies to.
    pub tag: Tag,
    /// The kind of label change permitted.
    pub kind: PrivilegeKind,
}

impl Privilege {
    /// Creates a privilege over `tag` of the given `kind`.
    pub fn new(tag: impl Into<Tag>, kind: PrivilegeKind) -> Self {
        Privilege { tag: tag.into(), kind }
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind, self.tag)
    }
}

/// The set of privileges held by an active entity: the four privilege tag-sets of §6.
///
/// ```
/// use legaliot_ifc::{PrivilegeSet, PrivilegeKind, Tag};
/// let mut p = PrivilegeSet::new();
/// p.grant(Tag::new("medical"), PrivilegeKind::SecrecyRemove);
/// assert!(p.permits(&Tag::new("medical"), PrivilegeKind::SecrecyRemove));
/// assert!(!p.permits(&Tag::new("medical"), PrivilegeKind::SecrecyAdd));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivilegeSet {
    secrecy_add: Label,
    secrecy_remove: Label,
    integrity_add: Label,
    integrity_remove: Label,
}

impl PrivilegeSet {
    /// Creates an empty privilege set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants a privilege, returning `true` if it was newly added.
    pub fn grant(&mut self, tag: impl Into<Tag>, kind: PrivilegeKind) -> bool {
        self.set_for(kind).insert(tag.into())
    }

    /// Grants a [`Privilege`] value.
    pub fn grant_privilege(&mut self, privilege: Privilege) -> bool {
        self.grant(privilege.tag, privilege.kind)
    }

    /// Revokes a privilege, returning `true` if it was present.
    pub fn revoke(&mut self, tag: &Tag, kind: PrivilegeKind) -> bool {
        self.set_for(kind).remove(tag)
    }

    /// Whether the set permits the given label change.
    pub fn permits(&self, tag: &Tag, kind: PrivilegeKind) -> bool {
        self.label_for(kind).contains(tag)
    }

    /// The tags this set may apply for the given privilege kind.
    pub fn label_for(&self, kind: PrivilegeKind) -> &Label {
        match kind {
            PrivilegeKind::SecrecyAdd => &self.secrecy_add,
            PrivilegeKind::SecrecyRemove => &self.secrecy_remove,
            PrivilegeKind::IntegrityAdd => &self.integrity_add,
            PrivilegeKind::IntegrityRemove => &self.integrity_remove,
        }
    }

    fn set_for(&mut self, kind: PrivilegeKind) -> &mut Label {
        match kind {
            PrivilegeKind::SecrecyAdd => &mut self.secrecy_add,
            PrivilegeKind::SecrecyRemove => &mut self.secrecy_remove,
            PrivilegeKind::IntegrityAdd => &mut self.integrity_add,
            PrivilegeKind::IntegrityRemove => &mut self.integrity_remove,
        }
    }

    /// Whether the set holds no privileges at all.
    pub fn is_empty(&self) -> bool {
        self.secrecy_add.is_empty()
            && self.secrecy_remove.is_empty()
            && self.integrity_add.is_empty()
            && self.integrity_remove.is_empty()
    }

    /// Total number of (tag, kind) privileges held.
    pub fn len(&self) -> usize {
        self.secrecy_add.len()
            + self.secrecy_remove.len()
            + self.integrity_add.len()
            + self.integrity_remove.len()
    }

    /// Iterates all privileges as `(tag, kind)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = Privilege> + '_ {
        PrivilegeKind::ALL.into_iter().flat_map(move |kind| {
            self.label_for(kind).iter().map(move |tag| Privilege::new(tag.clone(), kind))
        })
    }

    /// Merges another privilege set into this one (used when an owner delegates a bundle).
    pub fn merge(&mut self, other: &PrivilegeSet) {
        for p in other.iter() {
            self.grant_privilege(p);
        }
    }
}

impl FromIterator<Privilege> for PrivilegeSet {
    fn from_iter<I: IntoIterator<Item = Privilege>>(iter: I) -> Self {
        let mut set = PrivilegeSet::new();
        for p in iter {
            set.grant_privilege(p);
        }
        set
    }
}

/// Records, per tag, which entity *owns* the tag and may therefore delegate privileges
/// over it (§6 "Tag Ownership"; the paper's application-manager role in CamFlow).
///
/// Ownership is keyed by an opaque owner identifier so that this crate does not depend
/// on any particular entity or principal model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagOwnership {
    owners: BTreeMap<Tag, String>,
}

impl TagOwnership {
    /// Creates an empty ownership table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `owner` as the owner of `tag`. The first registration wins; returns
    /// `false` if the tag already had a (different or identical) owner.
    pub fn register(&mut self, tag: impl Into<Tag>, owner: impl Into<String>) -> bool {
        let tag = tag.into();
        if self.owners.contains_key(&tag) {
            return false;
        }
        self.owners.insert(tag, owner.into());
        true
    }

    /// The owner of `tag`, if registered.
    pub fn owner_of(&self, tag: &Tag) -> Option<&str> {
        self.owners.get(tag).map(String::as_str)
    }

    /// Whether `candidate` owns `tag`.
    pub fn is_owner(&self, tag: &Tag, candidate: &str) -> bool {
        self.owner_of(tag) == Some(candidate)
    }

    /// Checks that `delegator` owns `tag`, so a privilege over it may be delegated.
    ///
    /// # Errors
    ///
    /// Returns [`crate::IfcError::NotTagOwner`] if `delegator` is not the registered
    /// owner (or the tag has no owner).
    pub fn authorise_delegation(&self, tag: &Tag, delegator: &str) -> Result<(), crate::IfcError> {
        if self.is_owner(tag, delegator) {
            Ok(())
        } else {
            Err(crate::IfcError::NotTagOwner { tag: tag.clone() })
        }
    }

    /// Number of owned tags.
    pub fn len(&self) -> usize {
        self.owners.len()
    }

    /// Whether no tags are owned.
    pub fn is_empty(&self) -> bool {
        self.owners.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grant_and_permit() {
        let mut p = PrivilegeSet::new();
        assert!(p.grant("medical", PrivilegeKind::SecrecyRemove));
        assert!(!p.grant("medical", PrivilegeKind::SecrecyRemove));
        assert!(p.permits(&Tag::new("medical"), PrivilegeKind::SecrecyRemove));
        assert!(!p.permits(&Tag::new("medical"), PrivilegeKind::SecrecyAdd));
        assert!(!p.permits(&Tag::new("stats"), PrivilegeKind::SecrecyRemove));
    }

    #[test]
    fn revoke_removes_privilege() {
        let mut p = PrivilegeSet::new();
        p.grant("anon", PrivilegeKind::IntegrityAdd);
        assert!(p.revoke(&Tag::new("anon"), PrivilegeKind::IntegrityAdd));
        assert!(!p.permits(&Tag::new("anon"), PrivilegeKind::IntegrityAdd));
        assert!(!p.revoke(&Tag::new("anon"), PrivilegeKind::IntegrityAdd));
    }

    #[test]
    fn privilege_kinds_classification() {
        assert!(PrivilegeKind::SecrecyAdd.is_secrecy());
        assert!(PrivilegeKind::SecrecyAdd.is_add());
        assert!(PrivilegeKind::SecrecyRemove.is_secrecy());
        assert!(!PrivilegeKind::SecrecyRemove.is_add());
        assert!(!PrivilegeKind::IntegrityAdd.is_secrecy());
        assert!(PrivilegeKind::IntegrityAdd.is_add());
        assert!(!PrivilegeKind::IntegrityRemove.is_add());
    }

    #[test]
    fn iter_and_len() {
        let mut p = PrivilegeSet::new();
        p.grant("a", PrivilegeKind::SecrecyAdd);
        p.grant("b", PrivilegeKind::IntegrityRemove);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        let all: Vec<_> = p.iter().collect();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&Privilege::new("a", PrivilegeKind::SecrecyAdd)));
        assert!(all.contains(&Privilege::new("b", PrivilegeKind::IntegrityRemove)));
    }

    #[test]
    fn merge_unions_privileges() {
        let mut a = PrivilegeSet::new();
        a.grant("x", PrivilegeKind::SecrecyAdd);
        let mut b = PrivilegeSet::new();
        b.grant("y", PrivilegeKind::SecrecyRemove);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.permits(&Tag::new("y"), PrivilegeKind::SecrecyRemove));
    }

    #[test]
    fn from_iterator_builds_set() {
        let set: PrivilegeSet = vec![
            Privilege::new("medical", PrivilegeKind::SecrecyRemove),
            Privilege::new("anon", PrivilegeKind::IntegrityAdd),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ownership_first_registration_wins() {
        let mut o = TagOwnership::new();
        assert!(o.register("medical", "hospital"));
        assert!(!o.register("medical", "attacker"));
        assert_eq!(o.owner_of(&Tag::new("medical")), Some("hospital"));
        assert!(o.is_owner(&Tag::new("medical"), "hospital"));
        assert!(!o.is_owner(&Tag::new("medical"), "attacker"));
    }

    #[test]
    fn delegation_requires_ownership() {
        let mut o = TagOwnership::new();
        o.register("medical", "hospital");
        assert!(o.authorise_delegation(&Tag::new("medical"), "hospital").is_ok());
        let err = o.authorise_delegation(&Tag::new("medical"), "rogue").unwrap_err();
        assert!(matches!(err, crate::IfcError::NotTagOwner { .. }));
        // Unowned tags cannot be delegated by anyone.
        assert!(o.authorise_delegation(&Tag::new("unowned"), "hospital").is_err());
    }

    #[test]
    fn privilege_display() {
        let p = Privilege::new("medical", PrivilegeKind::SecrecyRemove);
        assert_eq!(p.to_string(), "secrecy-(medical)");
    }

    fn arb_kind() -> impl Strategy<Value = PrivilegeKind> {
        prop_oneof![
            Just(PrivilegeKind::SecrecyAdd),
            Just(PrivilegeKind::SecrecyRemove),
            Just(PrivilegeKind::IntegrityAdd),
            Just(PrivilegeKind::IntegrityRemove),
        ]
    }

    proptest! {
        /// A granted privilege is always observable and revocation always removes it.
        #[test]
        fn prop_grant_then_revoke(name in "[a-f]{1,4}", kind in arb_kind()) {
            let tag = Tag::new(&name);
            let mut p = PrivilegeSet::new();
            p.grant(tag.clone(), kind);
            prop_assert!(p.permits(&tag, kind));
            // Granting one kind never grants another.
            for other in PrivilegeKind::ALL {
                if other != kind {
                    prop_assert!(!p.permits(&tag, other));
                }
            }
            p.revoke(&tag, kind);
            prop_assert!(!p.permits(&tag, kind));
            prop_assert!(p.is_empty());
        }

        /// `iter` round-trips through `FromIterator`.
        #[test]
        fn prop_iter_round_trip(names in proptest::collection::vec("[a-f]{1,3}", 0..6), kind in arb_kind()) {
            let mut set = PrivilegeSet::new();
            for n in &names {
                set.grant(Tag::new(n), kind);
            }
            let rebuilt: PrivilegeSet = set.iter().collect();
            prop_assert_eq!(set, rebuilt);
        }
    }
}
