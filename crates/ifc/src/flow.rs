//! The flow rule and structured flow decisions.
//!
//! The paper's constraint (§6), applied on every data flow from entity `A` to `B`:
//!
//! ```text
//! A → B  iff  S(A) ⊆ S(B)  ∧  I(B) ⊆ I(A)
//! ```
//!
//! A denial is not an error: it is an expected outcome that must be *auditable*, so the
//! decision carries the precise reason (which label failed, and which tags were
//! missing), exactly the information Fig. 4 annotates on the prevented flow
//! ("destination S has no zeb", "source I has no hosp-dev").

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tag::{SecurityContext, Tag};

/// Why a flow was denied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowDenialReason {
    /// Secrecy tags of the source that the destination's secrecy label is missing.
    /// Non-empty iff the secrecy constraint `S(A) ⊆ S(B)` failed.
    pub missing_secrecy: Vec<Tag>,
    /// Integrity tags required by the destination that the source's integrity label is
    /// missing. Non-empty iff the integrity constraint `I(B) ⊆ I(A)` failed.
    pub missing_integrity: Vec<Tag>,
}

impl FlowDenialReason {
    /// Whether the secrecy constraint failed.
    pub fn secrecy_failed(&self) -> bool {
        !self.missing_secrecy.is_empty()
    }

    /// Whether the integrity constraint failed.
    pub fn integrity_failed(&self) -> bool {
        !self.missing_integrity.is_empty()
    }
}

impl fmt::Display for FlowDenialReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.secrecy_failed() {
            write!(f, "destination secrecy label is missing ")?;
            write_tags(f, &self.missing_secrecy)?;
            if self.integrity_failed() {
                write!(f, "; ")?;
            }
        }
        if self.integrity_failed() {
            write!(f, "source integrity label is missing ")?;
            write_tags(f, &self.missing_integrity)?;
        }
        if !self.secrecy_failed() && !self.integrity_failed() {
            write!(f, "no constraint violated")?;
        }
        Ok(())
    }
}

fn write_tags(f: &mut fmt::Formatter<'_>, tags: &[Tag]) -> fmt::Result {
    write!(f, "[")?;
    for (i, t) in tags.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{t}")?;
    }
    write!(f, "]")
}

/// The outcome of a flow check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowDecision {
    /// The flow satisfies both constraints and may proceed.
    Allowed,
    /// The flow violates at least one constraint and must be prevented.
    Denied(FlowDenialReason),
}

impl FlowDecision {
    /// Whether the flow is allowed.
    pub fn is_allowed(&self) -> bool {
        matches!(self, FlowDecision::Allowed)
    }

    /// Whether the flow is denied.
    pub fn is_denied(&self) -> bool {
        !self.is_allowed()
    }

    /// The denial reason, if denied.
    pub fn denial_reason(&self) -> Option<&FlowDenialReason> {
        match self {
            FlowDecision::Allowed => None,
            FlowDecision::Denied(r) => Some(r),
        }
    }
}

impl fmt::Display for FlowDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowDecision::Allowed => write!(f, "allowed"),
            FlowDecision::Denied(r) => write!(f, "denied ({r})"),
        }
    }
}

/// A record of a single flow check: the two contexts compared and the decision.
///
/// This is the unit that enforcement points hand to the audit layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowCheck {
    /// The source entity's security context at the time of the check.
    pub source: SecurityContext,
    /// The destination entity's security context at the time of the check.
    pub destination: SecurityContext,
    /// The decision reached.
    pub decision: FlowDecision,
}

impl FlowCheck {
    /// Performs a flow check between two security contexts and records the result.
    pub fn evaluate(source: &SecurityContext, destination: &SecurityContext) -> Self {
        FlowCheck {
            source: source.clone(),
            destination: destination.clone(),
            decision: can_flow(source, destination),
        }
    }
}

/// Applies the flow rule `S(A) ⊆ S(B) ∧ I(B) ⊆ I(A)` to a pair of security contexts.
///
/// ```
/// use legaliot_ifc::{SecurityContext, can_flow};
/// let source = SecurityContext::from_names(["medical"], ["consent"]);
/// let sink = SecurityContext::from_names(["medical", "stats"], Vec::<&str>::new());
/// // Secrecy can only grow along a flow; integrity requirements of the sink must be met.
/// assert!(can_flow(&source, &sink).is_allowed());
/// assert!(can_flow(&sink, &source).is_denied());
/// ```
pub fn can_flow(source: &SecurityContext, destination: &SecurityContext) -> FlowDecision {
    let missing_secrecy = destination.secrecy().missing_from(source.secrecy());
    let missing_integrity = source.integrity().missing_from(destination.integrity());
    if missing_secrecy.is_empty() && missing_integrity.is_empty() {
        FlowDecision::Allowed
    } else {
        FlowDecision::Denied(FlowDenialReason { missing_secrecy, missing_integrity })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use proptest::prelude::*;

    fn ctx(s: &[&str], i: &[&str]) -> SecurityContext {
        SecurityContext::from_names(s.iter().copied(), i.iter().copied())
    }

    #[test]
    fn equal_contexts_flow_both_ways() {
        let a = ctx(&["medical", "ann"], &["hosp-dev", "consent"]);
        let b = a.clone();
        assert!(can_flow(&a, &b).is_allowed());
        assert!(can_flow(&b, &a).is_allowed());
    }

    #[test]
    fn secrecy_can_only_grow() {
        let low = ctx(&["s1"], &[]);
        let high = ctx(&["s1", "s2"], &[]);
        assert!(can_flow(&low, &high).is_allowed());
        let back = can_flow(&high, &low);
        assert!(back.is_denied());
        let reason = back.denial_reason().unwrap();
        assert!(reason.secrecy_failed());
        assert!(!reason.integrity_failed());
        assert_eq!(reason.missing_secrecy, vec![Tag::new("s2")]);
    }

    #[test]
    fn integrity_requirements_of_destination_must_be_met() {
        let unendorsed = ctx(&[], &[]);
        let requires_sanitised = ctx(&[], &["sanitised"]);
        let decision = can_flow(&unendorsed, &requires_sanitised);
        assert!(decision.is_denied());
        let reason = decision.denial_reason().unwrap();
        assert!(reason.integrity_failed());
        assert_eq!(reason.missing_integrity, vec![Tag::new("sanitised")]);
        // The endorsed source can flow to the demanding destination.
        let endorsed = ctx(&[], &["sanitised"]);
        assert!(can_flow(&endorsed, &requires_sanitised).is_allowed());
        // Integrity is dropped, never gained, along a flow: endorsed → unendorsed is fine.
        assert!(can_flow(&endorsed, &unendorsed).is_allowed());
    }

    #[test]
    fn fig4_illegal_flow_both_constraints_fail() {
        // Zeb's sensors → Ann's analyser (Fig. 4): fails secrecy (no `zeb` at the
        // destination) and integrity (source has no `hosp-dev`).
        let zeb_sensor = ctx(&["medical", "zeb"], &["zeb-dev", "consent"]);
        let ann_analyser = ctx(&["medical", "ann"], &["hosp-dev", "consent"]);
        let decision = can_flow(&zeb_sensor, &ann_analyser);
        let reason = decision.denial_reason().expect("must be denied");
        assert!(reason.secrecy_failed());
        assert!(reason.integrity_failed());
        assert_eq!(reason.missing_secrecy, vec![Tag::new("zeb")]);
        assert_eq!(reason.missing_integrity, vec![Tag::new("hosp-dev")]);
    }

    #[test]
    fn public_source_flows_to_any_destination_without_integrity_requirements() {
        let public = SecurityContext::public();
        let sink = ctx(&["medical", "stats"], &[]);
        assert!(can_flow(&public, &sink).is_allowed());
    }

    #[test]
    fn flow_check_records_contexts_and_decision() {
        let a = ctx(&["medical"], &[]);
        let b = ctx(&[], &[]);
        let check = FlowCheck::evaluate(&a, &b);
        assert_eq!(check.source, a);
        assert_eq!(check.destination, b);
        assert!(check.decision.is_denied());
    }

    #[test]
    fn denial_display_mentions_tags() {
        let a = ctx(&["medical"], &[]);
        let b = ctx(&[], &["sanitised"]);
        let d = can_flow(&a, &b);
        let text = d.to_string();
        assert!(text.contains("medical"));
        assert!(text.contains("sanitised"));
    }

    fn arb_ctx() -> impl Strategy<Value = SecurityContext> {
        let label =
            || proptest::collection::btree_set("[a-d]{1,2}", 0..5).prop_map(Label::from_names);
        (label(), label()).prop_map(|(s, i)| SecurityContext::new(s, i))
    }

    proptest! {
        /// Reflexivity: every context can flow to itself.
        #[test]
        fn prop_flow_reflexive(a in arb_ctx()) {
            prop_assert!(can_flow(&a, &a).is_allowed());
        }

        /// Transitivity: if A→B and B→C are allowed then A→C is allowed.
        #[test]
        fn prop_flow_transitive(a in arb_ctx(), b in arb_ctx(), c in arb_ctx()) {
            if can_flow(&a, &b).is_allowed() && can_flow(&b, &c).is_allowed() {
                prop_assert!(can_flow(&a, &c).is_allowed());
            }
        }

        /// The decision is consistent with the raw subset checks.
        #[test]
        fn prop_flow_matches_subset_definition(a in arb_ctx(), b in arb_ctx()) {
            let allowed = a.secrecy().is_subset(b.secrecy()) && b.integrity().is_subset(a.integrity());
            prop_assert_eq!(can_flow(&a, &b).is_allowed(), allowed);
        }

        /// Denial reasons are precise: re-adding exactly the missing tags makes the flow legal.
        #[test]
        fn prop_denial_reason_is_sufficient(a in arb_ctx(), b in arb_ctx()) {
            if let FlowDecision::Denied(reason) = can_flow(&a, &b) {
                let mut fixed_dst = b.clone();
                for t in &reason.missing_secrecy {
                    fixed_dst.secrecy_mut().insert(t.clone());
                }
                let mut fixed_src = a.clone();
                for t in &reason.missing_integrity {
                    fixed_src.integrity_mut().insert(t.clone());
                }
                prop_assert!(can_flow(&fixed_src, &fixed_dst).is_allowed());
            }
        }
    }
}
