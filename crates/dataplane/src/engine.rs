//! The dataplane engine: registration, subscription (admission-checked channels),
//! sharded publishing, context changes with cache invalidation, and shutdown reports.

use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use legaliot_audit::{AuditEvent, AuditLog, BatchedAppender, SegmentStats, SegmentStore};
use legaliot_context::{ContextSnapshot, ContextStore, Timestamp};
use legaliot_ifc::{context_hash64, CacheStats, SecurityContext};
use legaliot_middleware::admission::{admit_channel, admit_channel_cached, AdmissionCache};
use legaliot_middleware::{
    AccessRegime, Component, DeliveryOutcome, FrozenMessage, FrozenSchema, Message, MessageSchema,
    MessageType,
};
use legaliot_obs::ObsConfig;
use legaliot_policy::AcCacheStats;

use crate::failpoint::{self, FailpointRegistry};
use crate::shard::{panic_message, run_worker, DeliveryBody, ShardReport, ShardState, ShardTask};
use crate::subscriber::{Mailbox, OverflowPolicy, Subscriber};
use crate::telemetry::TelemetrySnapshot;

/// How much audit evidence the data path records per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditDetail {
    /// One full `FlowChecked` record (both contexts + decision) per IFC-checked
    /// message — the paper's "all attempted flows are evidenced" reading, and what
    /// the synchronous middleware bus does. Denials that carry no flow check
    /// (isolation, per-message contextual AC) cannot produce a `FlowChecked` record;
    /// they are folded into per-pair `FlowSummary` records emitted at shutdown, so
    /// the evidence still totals every refused message.
    Full,
    /// Full records for every IFC denial and for the first check of each context pair;
    /// repeats fold into one `FlowSummary` per `(source, destination)` pair, emitted at
    /// shutdown, whose counts total *every* check in the window (including the ones
    /// also recorded individually). Isolation and per-message AC denials carry no
    /// flow check, so they appear in the summary counts (and, for isolation, on the
    /// control-plane log) only. Quenching is evidenced as one `MessageQuenched`
    /// record per freshly computed non-empty mask. Orders of magnitude cheaper than
    /// [`AuditDetail::Full`] at high message rates.
    Summarised,
}

/// How [`Dataplane::publish_message`] carries message bodies to the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Freeze the message once at ingress ([`FrozenMessage`]) and hand every
    /// subscriber an `Arc` of it: per-delivery cost is refcount bumps, and quenching
    /// is a bitmask over the shared buffer.
    #[default]
    ZeroCopy,
    /// Deep-clone the [`Message`] (its `BTreeMap` and every `String` in it) once per
    /// subscriber and quench by map clone on the shard — the naive port of the bus's
    /// per-delivery behaviour, kept as the measured baseline for the zero-copy path.
    CloneEach,
}

/// Durable-audit persistence: stream retained-out audit records into per-shard
/// on-disk [`SegmentStore`]s, and persist each shard's remaining in-memory records
/// at graceful shutdown — so the complete tamper-evident chain survives both
/// pruning and process crashes (see [`SegmentStore::recover`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Base directory; shard `i` writes segments under `<dir>/shard-<i>/`. On
    /// engine startup each shard directory is recovered (torn tails truncated and
    /// counted in [`DataplaneStats::recovery_truncations`]) and the shard's audit
    /// chain re-anchors on the last persisted record.
    pub dir: PathBuf,
    /// Records per segment before rotation (sealed segments are fsynced and
    /// closed). Clamped to ≥ 1.
    pub max_segment_records: usize,
    /// Fsync after every retention flush (`true`, the durable default) or only at
    /// segment rotation and shutdown (`false`, faster, wider loss window).
    pub sync_on_flush: bool,
}

impl PersistenceConfig {
    /// Durable defaults rooted at `dir`: 4096 records per segment, fsync on every
    /// flush.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig { dir: dir.into(), max_segment_records: 4096, sync_on_flush: true }
    }

    /// The segment directory of one shard.
    pub fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}"))
    }
}

/// Tuning knobs for a [`Dataplane`].
#[derive(Debug, Clone)]
pub struct DataplaneConfig {
    /// Number of worker shards (threads). Components hash onto shards by name.
    pub shards: usize,
    /// Bounded ingress-queue capacity per shard; full queues backpressure publishers.
    pub queue_capacity: usize,
    /// Whether to cache flow decisions per `(source ctx hash, destination ctx hash)`.
    pub cache_decisions: bool,
    /// Whether to cache contextual AC decisions (per-message and admission checks)
    /// keyed on the context keys the rules actually read, invalidated through the
    /// engine's [`ContextStore`] subscription and on AC-regime changes.
    pub cache_ac_decisions: bool,
    /// Maximum cached decisions per shard (flow cache and AC cache each).
    pub cache_capacity: usize,
    /// Events buffered per shard before a batched flush into the hash-chained log.
    pub audit_batch: usize,
    /// Per-message audit policy.
    pub audit_detail: AuditDetail,
    /// Bounded in-memory audit retention per shard: after each flush only the newest
    /// `keep` records stay resident (the chain remains anchored and verifiable — see
    /// [`legaliot_audit::AuditLog::retain_recent`]). `None` retains everything, which
    /// is unbounded memory under [`AuditDetail::Full`] at dataplane rates.
    pub audit_retention: Option<usize>,
    /// How message bodies travel through the shards (zero-copy vs the clone-per-
    /// delivery baseline).
    pub payload_mode: PayloadMode,
    /// When non-zero, each endpoint keeps its newest `retain_deliveries` delivered
    /// (post-quench) messages for inspection via [`Dataplane::take_delivered`]. Off
    /// (`0`) by default: the hot path then never materialises delivered bodies.
    pub retain_deliveries: usize,
    /// Bounded capacity of each subscriber mailbox opened by
    /// [`Dataplane::open_subscriber`] / [`Dataplane::subscribe_receiver`] (clamped to
    /// ≥ 1). Endpoints without an open mailbox pay nothing.
    pub mailbox_capacity: usize,
    /// What a shard does when a delivery lands on a full mailbox: block until the
    /// consumer makes space (lossless end-to-end backpressure) or shed the oldest
    /// queued message with counted, audited `DeliveryDropped` evidence.
    pub overflow: OverflowPolicy,
    /// Per-stage span timing and latency histograms ([`Dataplane::telemetry`]).
    /// Enabled by default; [`ObsConfig::disabled`] skips every clock read so the hot
    /// path keeps its uninstrumented cost (counters and queue-contention series stay
    /// on either way — they are relaxed atomics on slow paths).
    pub telemetry: ObsConfig,
    /// Deterministic, seeded fault injection ([`crate::failpoint`]): panics, delays
    /// and queue-full faults at named sites on the data path, for exercising shard
    /// supervision and churn soaks. `None` (the default) disables every probe down
    /// to a single branch, the same zero-cost-when-off discipline as `telemetry` —
    /// kept measured by the bench example's `failpoint_overhead` A/B.
    pub failpoints: Option<Arc<FailpointRegistry>>,
    /// How many times a panicked shard worker is restarted (caches cold, audit
    /// chain re-anchored, the in-flight batch resumed) before the shard degrades.
    /// Once degraded, the shard evidences everything it receives as lost and
    /// publishes routed to it fail fast with [`DataplaneError::ShardUnavailable`].
    pub restart_budget: u32,
    /// Base backoff slept before each restart; doubles per consecutive restart
    /// (capped at ×64), so a crash-looping shard backs off without wedging drain.
    pub restart_backoff: Duration,
    /// Durable audit: when set, every record pruned out of a shard's in-memory
    /// retention window streams to a per-shard on-disk [`SegmentStore`], and the
    /// remaining in-memory records are persisted and fsynced at shutdown. `None`
    /// (the default) keeps the hot path free of any IO — the same
    /// zero-cost-when-off discipline as `telemetry` and `failpoints`.
    pub persistence: Option<PersistenceConfig>,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            shards: 4,
            queue_capacity: 4096,
            cache_decisions: true,
            cache_ac_decisions: true,
            cache_capacity: legaliot_ifc::DecisionCache::DEFAULT_CAPACITY,
            audit_batch: 1024,
            audit_detail: AuditDetail::Summarised,
            audit_retention: None,
            payload_mode: PayloadMode::ZeroCopy,
            retain_deliveries: 0,
            mailbox_capacity: 1024,
            overflow: OverflowPolicy::Block,
            telemetry: ObsConfig::default(),
            failpoints: None,
            restart_budget: 4,
            restart_backoff: Duration::from_millis(1),
            persistence: None,
        }
    }
}

/// Errors from dataplane operations (enforcement denials are outcomes, not errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataplaneError {
    /// The referenced endpoint is not registered.
    UnknownEndpoint {
        /// The missing endpoint's name.
        name: String,
    },
    /// A shard's ingress queue is full and the caller asked not to block.
    QueueFull {
        /// The shard whose queue is full.
        shard: usize,
        /// The configured per-shard queue capacity.
        capacity: usize,
    },
    /// An endpoint with this name is already registered.
    DuplicateEndpoint {
        /// The conflicting name.
        name: String,
    },
    /// A published message does not conform to its registered schema (or the schema
    /// cannot be frozen).
    SchemaViolation {
        /// Why.
        reason: String,
    },
    /// [`Dataplane::publish_message`] requires a schema registered for the message's
    /// type (payload enforcement is schema-driven); none was found.
    UnknownSchema {
        /// The message type without a registered schema.
        message_type: String,
    },
    /// [`Dataplane::open_subscriber`] found a live receiver already attached to the
    /// endpoint; a mailbox has exactly one consuming handle. Drop (or
    /// [`Subscriber::close`]) the existing handle first.
    ReceiverAttached {
        /// The endpoint with a live receiver.
        name: String,
    },
    /// The destination's shard has degraded: its worker exhausted the restart
    /// budget ([`DataplaneConfig::restart_budget`]) and no longer enforces
    /// traffic, so the publish is refused instead of enqueueing work that would
    /// only be evidenced as lost (or hanging). Deliveries already enqueued for
    /// earlier subscribers in the fan-out stay enqueued, as with
    /// [`DataplaneError::QueueFull`].
    ShardUnavailable {
        /// The degraded shard.
        shard: usize,
    },
}

impl fmt::Display for DataplaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataplaneError::UnknownEndpoint { name } => write!(f, "unknown endpoint `{name}`"),
            DataplaneError::QueueFull { shard, capacity } => {
                write!(f, "ingress queue of shard {shard} is full (capacity {capacity})")
            }
            DataplaneError::DuplicateEndpoint { name } => {
                write!(f, "endpoint `{name}` is already registered")
            }
            DataplaneError::SchemaViolation { reason } => {
                write!(f, "schema violation: {reason}")
            }
            DataplaneError::UnknownSchema { message_type } => {
                write!(f, "no schema registered for message type `{message_type}`")
            }
            DataplaneError::ReceiverAttached { name } => {
                write!(f, "endpoint `{name}` already has a live receiver attached")
            }
            DataplaneError::ShardUnavailable { shard } => {
                write!(
                    f,
                    "shard {shard} is unavailable (degraded after exhausting its restart budget)"
                )
            }
        }
    }
}

impl std::error::Error for DataplaneError {}

/// A registered endpoint: its component (context, principal, isolation), its shard, its
/// current stable context hash, and its subscribers.
#[derive(Debug)]
pub(crate) struct Endpoint {
    pub component: Component,
    pub context_hash: u64,
    pub shard: usize,
    /// `(subscriber name, subscriber's shard)`, admission-checked at subscribe time.
    /// Behind an `Arc` so `publish` can snapshot the fan-out with one refcount bump
    /// instead of cloning the list on every message.
    pub subscribers: Arc<Vec<(Arc<str>, usize)>>,
    /// Newest delivered (post-quench) messages, kept only when
    /// [`DataplaneConfig::retain_deliveries`] is non-zero. Interior mutability so the
    /// shard can append under the directory *read* lock.
    pub inbox: parking_lot::Mutex<std::collections::VecDeque<Message>>,
    /// The streaming receiver's bounded mailbox, present while a [`Subscriber`] has
    /// been opened for this endpoint. Shards push enforced (post-quench) deliveries
    /// into it under the directory *read* lock; a closed mailbox is skipped with one
    /// atomic load, so torn-down consumers never slow the hot path.
    pub mailbox: Option<Arc<Mailbox>>,
}

/// Shared mutable state: the endpoint directory, registered (frozen) message schemas,
/// the AC regime and its control-plane admission cache, plus the control-plane audit
/// appender (subscriptions, context changes).
#[derive(Debug)]
pub(crate) struct Directory {
    pub endpoints: HashMap<Arc<str>, Endpoint>,
    pub schemas: HashMap<MessageType, Arc<FrozenSchema>>,
    pub access: AccessRegime,
    pub admission_cache: AdmissionCache,
    pub control_audit: BatchedAppender,
}

/// One shard's durable-audit attachment: the open segment store plus the resume
/// point recovered from its directory at engine startup. The store sits behind a
/// mutex because both the shard worker (prune sink, shutdown epilogue) and the
/// engine handle (`stats`, report assembly) touch it; all critical sections are
/// short and no other lock is held across them.
#[derive(Debug)]
pub(crate) struct ShardPersistence {
    pub store: Arc<Mutex<SegmentStore>>,
    /// Hash of the last record persisted before this incarnation started; the
    /// shard's in-memory chain re-anchors here so `verify_chain` spans disk + RAM.
    pub resume_anchor: u64,
    /// First record id this incarnation may assign (recovered `next_id`).
    pub resume_next_id: u64,
    /// Torn/corrupt tails truncated while recovering this shard's directory.
    pub recovery_truncations: u64,
}

/// State shared between the engine handle and the shard workers.
#[derive(Debug)]
pub(crate) struct SharedState {
    pub name: String,
    pub directory: RwLock<Directory>,
    pub shards: Vec<ShardState>,
    /// Per-shard durable-audit stores, index-aligned with `shards`; all `None`
    /// when persistence is off.
    pub persistence: Vec<Option<ShardPersistence>>,
    /// The context store enforcement-time AC decisions are evaluated against; shards
    /// keep per-batch snapshots of it and AC caches subscribe to it.
    pub context_store: Arc<ContextStore>,
    /// Time zero for telemetry: enqueue timestamps and worker-side clock reads are
    /// nanoseconds since this instant, so a `u64` carries them through [`ShardTask`]s.
    pub epoch: Instant,
}

/// Aggregated live statistics across all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataplaneStats {
    /// Messages fanned out to shard queues by `publish`/`try_publish`.
    pub published: u64,
    /// Messages whose flow check allowed delivery.
    pub delivered: u64,
    /// Messages denied (IFC or isolation).
    pub denied: u64,
    /// Messages dropped because an endpoint had been deregistered mid-flight.
    pub missing_endpoint: u64,
    /// Decision-cache hits across shards.
    pub cache_hits: u64,
    /// Decision-cache misses across shards.
    pub cache_misses: u64,
    /// Per-message AC cache hits across shards (payload deliveries only).
    pub ac_cache_hits: u64,
    /// Per-message AC cache misses across shards (payload deliveries only).
    pub ac_cache_misses: u64,
    /// Attributes removed by per-delivery source quenching (Fig. 10).
    pub quenched_attributes: u64,
    /// Effective payload bytes moved to receivers: the encoded size of each delivered
    /// message *minus* the spans of its quenched attributes, summed over deliveries —
    /// what subscribers actually observe, not what publishers encoded.
    pub payload_bytes: u64,
    /// Enforced deliveries handed to subscriber mailboxes (streaming receivers).
    pub receiver_enqueued: u64,
    /// Deliveries shed from full subscriber mailboxes under
    /// [`OverflowPolicy::DropOldest`] (each evidenced as a `DeliveryDropped` record).
    pub receiver_dropped: u64,
    /// Times a panicked shard worker was restarted by its supervisor (caches
    /// rebuilt cold, audit chain re-anchored; see `AuditEvent::ShardRestarted`).
    /// Zero in normal runs.
    pub shard_restarts: u64,
    /// Accepted deliveries abandoned by a crashed or degraded shard, each
    /// evidenced as an `AuditEvent::DeliveryLost` record — the accounting
    /// identity `published == delivered + denied + missing_endpoint +
    /// deliveries_lost` holds exactly after [`Dataplane::drain`]. Zero in
    /// normal runs.
    pub deliveries_lost: u64,
    /// Shards currently degraded (restart budget exhausted; publishes routed to
    /// them fail with [`DataplaneError::ShardUnavailable`]). Zero in normal runs.
    pub degraded_shards: u64,
    /// Segment files opened for writing across all shard stores. Zero when
    /// persistence is off.
    pub segments_written: u64,
    /// Audit records persisted to on-disk segments (retention prune-outs plus the
    /// shutdown tail). Zero when persistence is off.
    pub segment_records_persisted: u64,
    /// Bytes covered by successful segment fsyncs. Zero when persistence is off.
    pub segment_bytes_fsynced: u64,
    /// Records a wedged segment store had to drop (injected or real IO fault;
    /// each loss is counted, never silent). Zero in normal runs.
    pub segment_records_dropped: u64,
    /// Torn or corrupt segment tails truncated while recovering the persistence
    /// directories at engine startup. Zero in normal runs.
    pub recovery_truncations: u64,
}

impl DataplaneStats {
    /// Flow-decision cache hit ratio in `[0, 1]`; `0` before any lookups.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// AC-decision cache hit ratio in `[0, 1]`; `0` before any lookups.
    pub fn ac_cache_hit_ratio(&self) -> f64 {
        let total = self.ac_cache_hits + self.ac_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.ac_cache_hits as f64 / total as f64
        }
    }
}

/// Everything a dataplane hands back at shutdown.
#[derive(Debug)]
pub struct DataplaneReport {
    /// Final aggregated statistics.
    pub stats: DataplaneStats,
    /// Per-shard hash-chained audit logs (flow checks and summaries), index-aligned
    /// with the shard numbering.
    pub shard_audit: Vec<AuditLog>,
    /// The control-plane audit log (subscriptions, context changes, isolation).
    pub control_audit: AuditLog,
    /// Per-shard flow-decision-cache statistics.
    pub cache_stats: Vec<CacheStats>,
    /// Per-shard AC-decision-cache statistics (per-message contextual AC).
    pub ac_cache_stats: Vec<AcCacheStats>,
    /// The control plane's admission-cache statistics (subscribe-time AC).
    pub admission_cache_stats: AcCacheStats,
    /// `(shard index, panic message)` for every worker that did not exit
    /// cleanly at shutdown. Supervision catches worker panics and restarts the
    /// shard, so this is empty in practice; it exists so teardown *never*
    /// re-panics — an escaped panic is reported here (with an empty audit log
    /// and zeroed cache stats in that shard's slots) instead of aborting
    /// shutdown and wedging the remaining joins.
    pub worker_panics: Vec<(usize, String)>,
    /// Segment files sealed (fsynced and closed) across all shard stores,
    /// including the final seal each worker performs before its join returns.
    /// Zero when persistence is off.
    pub segments_sealed: u64,
    /// Bytes written to segments but never covered by a successful fsync. Zero
    /// after a clean shutdown; non-zero means a store wedged on an IO fault and
    /// the tail on disk may be torn — visible here rather than silently lost.
    pub unsynced_bytes: u64,
    /// Merged per-shard segment-store statistics (`None` when persistence is off).
    pub segment_stats: Option<SegmentStats>,
}

impl DataplaneReport {
    /// All audit records (control plane + every shard) merged into one timeline.
    pub fn merged_timeline(&self) -> Vec<legaliot_audit::AuditRecord> {
        AuditLog::merged_timeline(
            self.shard_audit.iter().chain(std::iter::once(&self.control_audit)),
        )
    }
}

/// A sharded, decision-cached publish/subscribe enforcement engine.
///
/// The paper's enforcement model (§8.2.2) — admission checks at channel establishment,
/// IFC on every message, re-evaluation on security-context change — run at dataplane
/// rates: components shard across worker threads by name hash, each shard enforces its
/// own subscribers' traffic against a private flow-decision cache, and audit is written
/// through per-shard batched appenders whose chains stay tamper-evident.
///
/// ```
/// use legaliot_context::{ContextSnapshot, Timestamp};
/// use legaliot_dataplane::{Dataplane, DataplaneConfig};
/// use legaliot_ifc::SecurityContext;
/// use legaliot_middleware::{Component, Principal};
///
/// let dataplane = Dataplane::new("example", DataplaneConfig::default());
/// let ctx = SecurityContext::from_names(["medical"], Vec::<&str>::new());
/// for name in ["sensor", "analyser"] {
///     dataplane
///         .register(Component::builder(name, Principal::new("ann")).context(ctx.clone()).build())
///         .unwrap();
///     dataplane.allow_sends_to(name);
/// }
/// let snapshot = ContextSnapshot::default();
/// let admitted = dataplane.subscribe("sensor", "analyser", &snapshot, Timestamp(1)).unwrap();
/// assert!(admitted.is_delivered());
/// dataplane.publish("sensor", Timestamp(2)).unwrap();
/// dataplane.drain();
/// assert_eq!(dataplane.stats().delivered, 1);
/// let report = dataplane.shutdown();
/// assert!(report.shard_audit.iter().all(|log| log.verify_chain().is_intact()));
/// ```
#[derive(Debug)]
pub struct Dataplane {
    shared: Arc<SharedState>,
    workers: Vec<JoinHandle<ShardReport>>,
    config: DataplaneConfig,
    published: std::sync::atomic::AtomicU64,
}

impl Dataplane {
    /// Creates the engine (with a fresh private [`ContextStore`]) and spawns one
    /// worker thread per shard.
    pub fn new(name: impl Into<String>, config: DataplaneConfig) -> Self {
        Self::with_context_store(name, config, Arc::new(ContextStore::new()))
    }

    /// Creates the engine around an externally owned [`ContextStore`]: enforcement-
    /// time AC decisions (per-message and admission) are evaluated against snapshots
    /// of this store, and the per-shard AC caches subscribe to it so a
    /// [`ContextStore::set`] on a key a rule reads forces re-evaluation on every
    /// shard.
    ///
    /// # Panics
    ///
    /// When [`DataplaneConfig::persistence`] is set and a shard's segment
    /// directory cannot be recovered or reopened (unreadable directory,
    /// permission failure). Durable audit that cannot start is a configuration
    /// error, not something to silently disable.
    pub fn with_context_store(
        name: impl Into<String>,
        config: DataplaneConfig,
        context_store: Arc<ContextStore>,
    ) -> Self {
        let name = name.into();
        let shards = config.shards.max(1);
        let persistence: Vec<Option<ShardPersistence>> = match &config.persistence {
            None => (0..shards).map(|_| None).collect(),
            Some(persistence) => (0..shards)
                .map(|index| {
                    let dir = persistence.shard_dir(index);
                    let report = SegmentStore::recover(&dir).unwrap_or_else(|error| {
                        panic!("cannot recover audit segments in {}: {error}", dir.display())
                    });
                    let mut store = SegmentStore::create(
                        &dir,
                        report.head_hash,
                        persistence.max_segment_records.max(1),
                    )
                    .unwrap_or_else(|error| {
                        panic!("cannot open audit segment store in {}: {error}", dir.display())
                    });
                    if let Some(registry) = &config.failpoints {
                        store.set_fault_hook(crate::failpoint::segment_fault_hook(Arc::clone(
                            registry,
                        )));
                    }
                    Some(ShardPersistence {
                        store: Arc::new(Mutex::new(store)),
                        resume_anchor: report.head_hash,
                        resume_next_id: report.next_id,
                        recovery_truncations: report.truncations.len() as u64,
                    })
                })
                .collect(),
        };
        let mut admission_cache = AdmissionCache::with_capacity(config.cache_capacity);
        admission_cache.attach(&context_store);
        let shared = Arc::new(SharedState {
            directory: RwLock::new(Directory {
                endpoints: HashMap::new(),
                schemas: HashMap::new(),
                access: AccessRegime::new(),
                admission_cache,
                control_audit: BatchedAppender::new(format!("{name}-control"), 1),
            }),
            shards: (0..shards)
                .map(|_| ShardState::new(config.queue_capacity, config.telemetry.is_enabled()))
                .collect(),
            persistence,
            context_store,
            epoch: Instant::now(),
            name,
        });
        let workers = (0..shards)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                thread::spawn(move || run_worker(index, shared, config))
            })
            .collect();
        Dataplane { shared, workers, config, published: std::sync::atomic::AtomicU64::new(0) }
    }

    /// The configuration this engine runs with.
    pub fn config(&self) -> &DataplaneConfig {
        &self.config
    }

    /// The context store enforcement-time AC decisions are evaluated against.
    pub fn context_store(&self) -> &Arc<ContextStore> {
        &self.shared.context_store
    }

    /// The shard a component name routes to (stable FNV-1a of the name, the same hash
    /// family the decision cache uses).
    pub fn shard_of(&self, name: &str) -> usize {
        (legaliot_ifc::str_hash64(name) % self.shared.shards.len() as u64) as usize
    }

    /// Registers a component as a dataplane endpoint.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::DuplicateEndpoint`] if the name is taken.
    pub fn register(&self, component: Component) -> Result<(), DataplaneError> {
        let name: Arc<str> = Arc::from(component.name());
        let shard = self.shard_of(&name);
        let context_hash = context_hash64(component.context());
        let mut directory = self.shared.directory.write();
        if directory.endpoints.contains_key(&name) {
            return Err(DataplaneError::DuplicateEndpoint { name: name.to_string() });
        }
        directory.endpoints.insert(
            name,
            Endpoint {
                component,
                context_hash,
                shard,
                subscribers: Arc::new(Vec::new()),
                inbox: parking_lot::Mutex::new(std::collections::VecDeque::new()),
                mailbox: None,
            },
        );
        Ok(())
    }

    /// Registers a batch of components under a single directory write lock — the
    /// bulk-loading path for generated fleets, where thousands of endpoints would
    /// otherwise pay one lock round-trip each.
    ///
    /// All-or-nothing: the whole batch is checked (against the directory and for
    /// duplicates within the batch) before anything is inserted, so an `Err`
    /// registers no endpoint. Returns how many components were registered.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::DuplicateEndpoint`] naming the first taken or repeated name.
    pub fn register_bulk(
        &self,
        components: impl IntoIterator<Item = Component>,
    ) -> Result<usize, DataplaneError> {
        let prepared: Vec<(Arc<str>, usize, u64, Component)> = components
            .into_iter()
            .map(|component| {
                let name: Arc<str> = Arc::from(component.name());
                let shard = self.shard_of(&name);
                let context_hash = context_hash64(component.context());
                (name, shard, context_hash, component)
            })
            .collect();
        let mut directory = self.shared.directory.write();
        let mut batch_names = std::collections::HashSet::with_capacity(prepared.len());
        for (name, _, _, _) in &prepared {
            if directory.endpoints.contains_key(name) || !batch_names.insert(Arc::clone(name)) {
                return Err(DataplaneError::DuplicateEndpoint { name: name.to_string() });
            }
        }
        let registered = prepared.len();
        directory.endpoints.reserve(registered);
        for (name, shard, context_hash, component) in prepared {
            directory.endpoints.insert(
                name,
                Endpoint {
                    component,
                    context_hash,
                    shard,
                    subscribers: Arc::new(Vec::new()),
                    inbox: parking_lot::Mutex::new(std::collections::VecDeque::new()),
                    mailbox: None,
                },
            );
        }
        Ok(registered)
    }

    /// Opens a streaming receiver for `name`: subsequent enforced (post-quench)
    /// payload deliveries to the endpoint are queued in a bounded mailbox
    /// ([`DataplaneConfig::mailbox_capacity`], [`DataplaneConfig::overflow`]) and
    /// handed out through the returned [`Subscriber`] — as shared
    /// `Arc<FrozenMessage>`s in zero-copy mode, so the hand-off never copies payload
    /// bytes. Flow-only `publish` traffic carries no body and is not queued.
    ///
    /// Dropping (or closing) the handle tears the mailbox down: shards stop
    /// enqueueing without blocking, and the endpoint can be re-opened afterwards.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::UnknownEndpoint`] if the endpoint is unregistered;
    /// [`DataplaneError::ReceiverAttached`] if a live receiver already exists (a
    /// mailbox has exactly one consuming handle).
    pub fn open_subscriber(&self, name: &str) -> Result<Subscriber, DataplaneError> {
        let mut directory = self.shared.directory.write();
        let (key, endpoint) = directory
            .endpoints
            .get_key_value(name)
            .ok_or_else(|| DataplaneError::UnknownEndpoint { name: name.to_string() })?;
        let key = Arc::clone(key);
        if endpoint.mailbox.as_ref().is_some_and(|mailbox| !mailbox.is_closed()) {
            return Err(DataplaneError::ReceiverAttached { name: name.to_string() });
        }
        let mailbox = Arc::new(Mailbox::new(self.config.mailbox_capacity, self.config.overflow));
        directory.endpoints.get_mut(name).expect("checked above").mailbox =
            Some(Arc::clone(&mailbox));
        Ok(Subscriber::new(key, mailbox))
    }

    /// [`Self::open_subscriber`] plus [`Self::subscribe`] in one call: opens the
    /// receive handle, then runs the full admission sequence for
    /// `subscriber ← publisher` and returns both. The handle is returned even when
    /// admission refuses the edge (the endpoint may be admitted to other publishers,
    /// or re-subscribed after a context change); nothing arrives on it until some
    /// subscription is established.
    ///
    /// # Errors
    ///
    /// As [`Self::subscribe`] and [`Self::open_subscriber`]. The receiver is opened
    /// *before* admission runs, and is closed again if admission errors, so an `Err`
    /// leaves no subscription established and no receiver attached.
    pub fn subscribe_receiver(
        &self,
        publisher: &str,
        subscriber: &str,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<(DeliveryOutcome, Subscriber), DataplaneError> {
        let handle = self.open_subscriber(subscriber)?;
        // On error the handle drops here, closing the just-opened mailbox — the
        // endpoint stays re-openable and no partial state survives the Err.
        let outcome = self.subscribe(publisher, subscriber, snapshot, now)?;
        Ok((outcome, handle))
    }

    /// Registers (or replaces) the schema for a message type, compiled once into its
    /// frozen form ([`FrozenSchema`]: interned name table, kind array, sensitive-
    /// attribute bitmask) shared by every message of the type.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::SchemaViolation`] when the schema cannot be frozen (more than
    /// [`legaliot_middleware::MAX_FROZEN_ATTRIBUTES`] attributes).
    pub fn register_schema(&self, schema: MessageSchema) -> Result<(), DataplaneError> {
        let frozen = FrozenSchema::new(&schema)
            .map_err(|reason| DataplaneError::SchemaViolation { reason })?;
        let mut directory = self.shared.directory.write();
        directory.schemas.insert(schema.message_type.clone(), Arc::new(frozen));
        Ok(())
    }

    /// Drains the retained deliveries of an endpoint (newest
    /// [`DataplaneConfig::retain_deliveries`] post-quench messages). Always empty when
    /// retention is off.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::UnknownEndpoint`] if the endpoint is unregistered.
    pub fn take_delivered(&self, name: &str) -> Result<Vec<Message>, DataplaneError> {
        let directory = self.shared.directory.read();
        let endpoint = directory
            .endpoints
            .get(name)
            .ok_or_else(|| DataplaneError::UnknownEndpoint { name: name.to_string() })?;
        let drained: Vec<Message> = endpoint.inbox.lock().drain(..).collect();
        Ok(drained)
    }

    /// Removes an endpoint and every subscription involving it. In-flight messages to
    /// or from it are dropped (counted as `missing_endpoint`), and its streaming
    /// receiver, if open, is closed (consumers drain the backlog, then observe
    /// `Disconnected`).
    pub fn deregister(&self, name: &str) -> Result<(), DataplaneError> {
        let mut directory = self.shared.directory.write();
        let Some(endpoint) = directory.endpoints.remove(name) else {
            return Err(DataplaneError::UnknownEndpoint { name: name.to_string() });
        };
        if let Some(mailbox) = &endpoint.mailbox {
            mailbox.close();
        }
        for endpoint in directory.endpoints.values_mut() {
            if endpoint.subscribers.iter().any(|(sub, _)| &**sub == name) {
                Arc::make_mut(&mut endpoint.subscribers).retain(|(sub, _)| &**sub != name);
            }
        }
        Ok(())
    }

    /// Mutates the access-control regime admission checks run against. Rules use the
    /// same vocabulary as the synchronous bus ([`legaliot_middleware::AccessRule`]).
    pub fn with_access<R>(&self, f: impl FnOnce(&mut AccessRegime) -> R) -> R {
        f(&mut self.shared.directory.write().access)
    }

    /// Convenience: allows anyone to `Send` to `name` (the common pub/sub default;
    /// without any rule the regime is default-deny, as in the bus).
    pub fn allow_sends_to(&self, name: &str) {
        use legaliot_middleware::{AccessRule, Operation, Subject};
        self.with_access(|access| {
            access.add_rule(name, AccessRule::allow(Subject::Anyone, Operation::Send, None));
        });
    }

    /// Admission-checks and establishes the subscription `subscriber ← publisher`
    /// (messages published by `publisher` flow to `subscriber`).
    ///
    /// Runs the full §8.2.2 admission sequence (isolation → AC → IFC) via
    /// [`legaliot_middleware::admission::admit_channel`]; the subscription is recorded
    /// only when admitted, and the attempt is audited on the control-plane log either
    /// way. Per-message enforcement still re-checks IFC against current contexts.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::UnknownEndpoint`] if either endpoint is unregistered.
    pub fn subscribe(
        &self,
        publisher: &str,
        subscriber: &str,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<DeliveryOutcome, DataplaneError> {
        let mut directory = self.shared.directory.write();
        // Reuse the stored key so subscriber lists share one allocation per name.
        let subscriber_key: Arc<str> = directory
            .endpoints
            .get_key_value(subscriber)
            .map(|(key, _)| Arc::clone(key))
            .ok_or_else(|| DataplaneError::UnknownEndpoint { name: subscriber.to_string() })?;
        let subscriber_shard = directory.endpoints[&subscriber_key].shard;
        let outcome = {
            let dir = &mut *directory;
            let source = dir
                .endpoints
                .get(publisher)
                .ok_or_else(|| DataplaneError::UnknownEndpoint { name: publisher.to_string() })?;
            let destination = &dir.endpoints[&subscriber_key];
            // The admission cache may only answer for snapshots that reflect the
            // engine's own context store (its key-level invalidation watches exactly
            // that store); ad-hoc snapshots fall back to a direct evaluation. Sync
            // *before* the version check: sync consumes the subscription's change
            // feed, so a write landing after it either fails the equality check here
            // or is consumed-and-invalidated by the next sync — whereas syncing after
            // the check could consume a change and then cache a decision from the
            // caller's now-stale snapshot, which nothing would ever invalidate.
            if self.config.cache_ac_decisions {
                dir.admission_cache.sync(&self.shared.context_store, &dir.access);
            }
            if self.config.cache_ac_decisions
                && snapshot.version() == self.shared.context_store.version()
            {
                admit_channel_cached(
                    &source.component,
                    &destination.component,
                    &dir.access,
                    snapshot,
                    now,
                    &mut dir.admission_cache,
                )
            } else {
                admit_channel(&source.component, &destination.component, &dir.access, snapshot, now)
            }
        };
        let admitted = outcome.is_delivered();
        if admitted {
            let publisher_endpoint = directory.endpoints.get_mut(publisher).expect("checked above");
            if !publisher_endpoint
                .subscribers
                .iter()
                .any(|(existing, _)| *existing == subscriber_key)
            {
                Arc::make_mut(&mut publisher_endpoint.subscribers)
                    .push((subscriber_key, subscriber_shard));
            }
        }
        directory.control_audit.append(
            AuditEvent::ChannelChanged {
                from: publisher.to_string(),
                to: subscriber.to_string(),
                established: admitted,
                reason: match &outcome {
                    DeliveryOutcome::Delivered { .. } => "admission checks passed".to_string(),
                    DeliveryOutcome::Isolated => "endpoint isolated".to_string(),
                    DeliveryOutcome::DeniedByAccessControl { reason } => reason.clone(),
                    DeliveryOutcome::DeniedByIfc(decision) => format!("ifc: {decision}"),
                    other => format!("{other:?}"),
                },
            },
            now.as_millis(),
        );
        Ok(outcome)
    }

    /// Removes the subscription `subscriber ← publisher`, if present.
    pub fn unsubscribe(&self, publisher: &str, subscriber: &str) -> Result<(), DataplaneError> {
        let mut directory = self.shared.directory.write();
        let endpoint = directory
            .endpoints
            .get_mut(publisher)
            .ok_or_else(|| DataplaneError::UnknownEndpoint { name: publisher.to_string() })?;
        Arc::make_mut(&mut endpoint.subscribers).retain(|(sub, _)| &**sub != subscriber);
        Ok(())
    }

    /// Collects the current fan-out of `publisher` without holding the directory lock
    /// during queue pushes (a blocked push must never hold the lock a worker needs).
    #[allow(clippy::type_complexity)]
    fn fanout(
        &self,
        publisher: &str,
    ) -> Result<(Arc<str>, Arc<Vec<(Arc<str>, usize)>>), DataplaneError> {
        let directory = self.shared.directory.read();
        let (key, endpoint) = directory
            .endpoints
            .get_key_value(publisher)
            .ok_or_else(|| DataplaneError::UnknownEndpoint { name: publisher.to_string() })?;
        Ok((Arc::clone(key), Arc::clone(&endpoint.subscribers)))
    }

    /// The single fan-out path every publish variant goes through: one
    /// [`ShardTask::Deliver`] per subscriber, `body()` supplying the (possibly absent)
    /// message body for each. Blocking and non-blocking pushes, in-flight accounting
    /// and the published counter live here so the flow-only and payload-carrying
    /// entry points cannot drift apart.
    fn enqueue_fanout(
        &self,
        from: &Arc<str>,
        subscribers: &[(Arc<str>, usize)],
        now: Timestamp,
        block: bool,
        mut body: impl FnMut() -> Option<DeliveryBody>,
    ) -> Result<usize, DataplaneError> {
        // One clock read per fan-out (not per subscriber); 0 when telemetry is off,
        // which the workers treat as "no timing".
        let enqueued_ns = if self.config.telemetry.is_enabled() {
            self.shared.epoch.elapsed().as_nanos() as u64
        } else {
            0
        };
        let mut enqueued = 0;
        for (to, shard) in subscribers {
            let state = &self.shared.shards[*shard];
            // A degraded shard no longer enforces anything: fail fast instead of
            // enqueueing work that would only be evidenced as lost (or, under a
            // blocking publish, hanging on a queue nobody fully services).
            if state.counters.degraded.load(Ordering::Relaxed) {
                self.published.fetch_add(enqueued as u64, Ordering::Relaxed);
                return Err(DataplaneError::ShardUnavailable { shard: *shard });
            }
            // The `ingress.enqueue` failpoint: injected queue-full backpressure
            // (or a publisher-side delay), before any in-flight accounting.
            if failpoint::inject_ingress(&self.config.failpoints) {
                self.published.fetch_add(enqueued as u64, Ordering::Relaxed);
                return Err(DataplaneError::QueueFull {
                    shard: *shard,
                    capacity: state.queue.capacity(),
                });
            }
            let task = ShardTask::Deliver {
                from: Arc::clone(from),
                to: Arc::clone(to),
                at_millis: now.as_millis(),
                enqueued_ns,
                body: body(),
            };
            state.counters.in_flight.fetch_add(1, Ordering::SeqCst);
            if block {
                let depth = state.queue.push(task);
                state.telemetry.record_queue_depth(depth);
            } else {
                match state.queue.try_push(task) {
                    Ok(depth) => state.telemetry.record_queue_depth(depth),
                    Err(_) => {
                        state.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
                        self.published.fetch_add(enqueued as u64, Ordering::Relaxed);
                        return Err(DataplaneError::QueueFull {
                            shard: *shard,
                            capacity: state.queue.capacity(),
                        });
                    }
                }
            }
            enqueued += 1;
        }
        self.published.fetch_add(enqueued as u64, Ordering::Relaxed);
        Ok(enqueued)
    }

    /// Publishes one body-less message from `publisher` to every admitted subscriber,
    /// blocking on full shard queues (backpressure). Returns the number of deliveries
    /// enqueued.
    ///
    /// This is the *flow-only fast path*: shards enforce isolation and IFC per
    /// delivery but carry no payload, so there is no schema check, no per-message AC
    /// and no quenching. Use [`Self::publish_message`] for full per-delivery
    /// enforcement over a real body; both run through the same fan-out code path.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::UnknownEndpoint`] if the publisher is unregistered.
    pub fn publish(&self, publisher: &str, now: Timestamp) -> Result<usize, DataplaneError> {
        let (from, subscribers) = self.fanout(publisher)?;
        self.enqueue_fanout(&from, &subscribers, now, true, || None)
    }

    /// Like [`Self::publish`] but fails with [`DataplaneError::QueueFull`] instead of
    /// blocking. Deliveries already enqueued for earlier subscribers stay enqueued.
    pub fn try_publish(&self, publisher: &str, now: Timestamp) -> Result<usize, DataplaneError> {
        let (from, subscribers) = self.fanout(publisher)?;
        self.enqueue_fanout(&from, &subscribers, now, false, || None)
    }

    /// Publishes a payload-carrying message from `publisher` to every admitted
    /// subscriber, blocking on full shard queues. Returns the number of deliveries
    /// enqueued.
    ///
    /// The message is validated against its registered schema once at ingress, then
    /// carried per [`DataplaneConfig::payload_mode`]: frozen once and shared
    /// zero-copy (one `Arc` bump per subscriber), or deep-cloned per subscriber
    /// (the measured baseline). Shards run the full §8.2.2 per-delivery sequence —
    /// isolation, contextual AC at message-type granularity (cache-amortised), IFC
    /// over the message's effective context, then per-attribute source quenching
    /// against the subscriber's secrecy label (Fig. 10), with quenched attribute
    /// names recorded in the per-shard audit.
    ///
    /// # Errors
    ///
    /// [`DataplaneError::UnknownEndpoint`] if the publisher is unregistered,
    /// [`DataplaneError::UnknownSchema`] if no schema is registered for the message's
    /// type, and [`DataplaneError::SchemaViolation`] if validation fails.
    pub fn publish_message(
        &self,
        publisher: &str,
        message: &Message,
        now: Timestamp,
    ) -> Result<usize, DataplaneError> {
        let (from, subscribers, schema) = {
            let directory = self.shared.directory.read();
            let (key, endpoint) = directory
                .endpoints
                .get_key_value(publisher)
                .ok_or_else(|| DataplaneError::UnknownEndpoint { name: publisher.to_string() })?;
            let schema =
                directory.schemas.get(&message.message_type).cloned().ok_or_else(|| {
                    DataplaneError::UnknownSchema { message_type: message.message_type.to_string() }
                })?;
            (Arc::clone(key), Arc::clone(&endpoint.subscribers), schema)
        };
        match self.config.payload_mode {
            PayloadMode::ZeroCopy => {
                let frozen = FrozenMessage::freeze(message, schema)
                    .map_err(|reason| DataplaneError::SchemaViolation { reason })?
                    .with_sender(Arc::clone(&from))
                    .with_sent_at(now.as_millis());
                let frozen = Arc::new(frozen);
                self.enqueue_fanout(&from, &subscribers, now, true, || {
                    Some(DeliveryBody::Frozen(Arc::clone(&frozen)))
                })
            }
            PayloadMode::CloneEach => {
                schema
                    .validate(message)
                    .map_err(|reason| DataplaneError::SchemaViolation { reason })?;
                let mut stamped = message.clone();
                stamped.sender = from.to_string();
                stamped.sent_at_millis = now.as_millis();
                self.enqueue_fanout(&from, &subscribers, now, true, || {
                    // The per-subscriber deep clone *is* the baseline being measured.
                    Some(DeliveryBody::Cloned(Box::new(stamped.clone())))
                })
            }
        }
    }

    /// Changes an entity's security context and broadcasts invalidation of its old
    /// cached decisions to every shard, preserving the paper's re-evaluation-on-
    /// context-change semantics: no decision computed against the superseded context
    /// survives, and the next message on any of the entity's channels re-walks the
    /// lattice. The change is audited on the control-plane log.
    pub fn set_context(
        &self,
        name: &str,
        context: SecurityContext,
        now: Timestamp,
    ) -> Result<(), DataplaneError> {
        let old_hash = {
            let mut directory = self.shared.directory.write();
            let endpoint = directory
                .endpoints
                .get_mut(name)
                .ok_or_else(|| DataplaneError::UnknownEndpoint { name: name.to_string() })?;
            let old_hash = endpoint.context_hash;
            let before = endpoint.component.context().clone();
            endpoint.component.entity_mut().set_context_trusted(context.clone());
            endpoint.context_hash = context_hash64(&context);
            directory.control_audit.append(
                AuditEvent::LabelChanged {
                    entity: name.to_string(),
                    before,
                    after: context,
                    algorithm: None,
                },
                now.as_millis(),
            );
            old_hash
        };
        // Broadcast after releasing the write lock: a full queue must not deadlock the
        // workers (which take the read lock) against this writer.
        for shard in &self.shared.shards {
            shard.counters.in_flight.fetch_add(1, Ordering::SeqCst);
            shard.queue.push(ShardTask::Invalidate { context_hash: old_hash });
        }
        Ok(())
    }

    /// Isolates or de-isolates an endpoint; while isolated, every delivery involving it
    /// is denied (§8.2.2 isolation is monitored throughout the connection's lifetime).
    /// The change is audited on the control-plane log — per-message isolation denials
    /// are counted (stats and, in summarised mode, per-pair summaries) but carry no
    /// individual flow-check record, as no flow check ran.
    pub fn set_isolated(
        &self,
        name: &str,
        isolated: bool,
        now: Timestamp,
    ) -> Result<(), DataplaneError> {
        let mut directory = self.shared.directory.write();
        let endpoint = directory
            .endpoints
            .get_mut(name)
            .ok_or_else(|| DataplaneError::UnknownEndpoint { name: name.to_string() })?;
        endpoint.component.set_isolated(isolated);
        directory.control_audit.append(
            AuditEvent::Reconfigured {
                component: name.to_string(),
                issued_by: self.shared.name.clone(),
                action: if isolated { "isolate".to_string() } else { "deisolate".to_string() },
                accepted: true,
            },
            now.as_millis(),
        );
        Ok(())
    }

    /// Blocks until every enqueued task has been fully processed by its shard.
    ///
    /// Under [`OverflowPolicy::Block`], a shard parked on a full subscriber mailbox
    /// counts as unprocessed work: `drain` then returns only once the consumer makes
    /// space (or its handle closes) — the same end-to-end backpressure `publish`
    /// exhibits. Drain from a different thread than the one consuming.
    pub fn drain(&self) {
        let mut spins = 0u32;
        loop {
            let in_flight: u64 = self
                .shared
                .shards
                .iter()
                .map(|shard| shard.counters.in_flight.load(Ordering::SeqCst))
                .sum();
            if in_flight == 0 {
                return;
            }
            // Yield first (cheap when the workers just need the core), then back off
            // to short sleeps so a long drain does not pin a core busy-waiting.
            if spins < 64 {
                spins += 1;
                thread::yield_now();
            } else {
                thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }

    /// Live aggregated statistics (racy by nature while publishers are active; exact
    /// after [`Self::drain`]).
    pub fn stats(&self) -> DataplaneStats {
        let mut stats = DataplaneStats {
            published: self.published.load(Ordering::Relaxed),
            ..DataplaneStats::default()
        };
        for shard in &self.shared.shards {
            stats.delivered += shard.counters.delivered.load(Ordering::Relaxed);
            stats.denied += shard.counters.denied.load(Ordering::Relaxed);
            stats.missing_endpoint += shard.counters.missing_endpoint.load(Ordering::Relaxed);
            stats.cache_hits += shard.counters.cache_hits.load(Ordering::Relaxed);
            stats.cache_misses += shard.counters.cache_misses.load(Ordering::Relaxed);
            stats.ac_cache_hits += shard.counters.ac_cache_hits.load(Ordering::Relaxed);
            stats.ac_cache_misses += shard.counters.ac_cache_misses.load(Ordering::Relaxed);
            stats.quenched_attributes += shard.counters.quenched.load(Ordering::Relaxed);
            stats.payload_bytes += shard.counters.payload_bytes.load(Ordering::Relaxed);
            stats.receiver_enqueued += shard.counters.receiver_enqueued.load(Ordering::Relaxed);
            stats.receiver_dropped += shard.counters.receiver_dropped.load(Ordering::Relaxed);
            stats.shard_restarts += shard.counters.restarts.load(Ordering::Relaxed);
            stats.deliveries_lost += shard.counters.lost.load(Ordering::Relaxed);
            stats.degraded_shards += u64::from(shard.counters.degraded.load(Ordering::Relaxed));
        }
        if let Some(segments) = self.segment_stats() {
            stats.segments_written = segments.segments_written;
            stats.segment_records_persisted = segments.records_persisted;
            stats.segment_bytes_fsynced = segments.bytes_fsynced;
            stats.segment_records_dropped = segments.records_dropped;
            stats.recovery_truncations = self
                .shared
                .persistence
                .iter()
                .flatten()
                .map(|shard| shard.recovery_truncations)
                .sum();
        }
        stats
    }

    /// Merged per-shard segment-store statistics, including fsync latency
    /// histograms; `None` when [`DataplaneConfig::persistence`] is off.
    pub fn segment_stats(&self) -> Option<SegmentStats> {
        let mut merged = SegmentStats::default();
        let mut enabled = false;
        for shard in self.shared.persistence.iter().flatten() {
            merged.merge(shard.store.lock().stats());
            enabled = true;
        }
        enabled.then_some(merged)
    }

    /// A point-in-time [`TelemetrySnapshot`]: aggregated counters plus per-shard
    /// stage-latency histograms and contention series (queue depth high-water marks,
    /// park/wait counts, directory-lock wait, Block-policy stalls). Like
    /// [`Self::stats`], live reads are racy by nature and exact after
    /// [`Self::drain`]. Render with [`TelemetrySnapshot::to_json`] /
    /// [`TelemetrySnapshot::to_text`].
    ///
    /// When the engine runs with [`ObsConfig::disabled`], stage histograms are empty
    /// (no span timing is taken) but counters and queue contention are still real.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            dataplane: self.shared.name.clone(),
            enabled: self.config.telemetry.is_enabled(),
            stats: self.stats(),
            shards: self
                .shared
                .shards
                .iter()
                .map(|shard| shard.telemetry.snapshot(shard.queue.contention()))
                .collect(),
        }
    }

    /// Closes every open subscriber mailbox: shards stop enqueueing, blocked
    /// consumers wake, and each consumer observes `Disconnected` once its backlog is
    /// drained. Run at shutdown (after workers exit, so nothing enqueued is lost).
    fn close_mailboxes(&self) {
        let directory = self.shared.directory.read();
        for endpoint in directory.endpoints.values() {
            if let Some(mailbox) = &endpoint.mailbox {
                mailbox.close();
            }
        }
    }

    /// Drains outstanding work, stops every worker and returns the final report with
    /// all audit logs (chains intact) and cache statistics.
    pub fn shutdown(mut self) -> DataplaneReport {
        self.drain();
        for shard in &self.shared.shards {
            shard.counters.in_flight.fetch_add(1, Ordering::SeqCst);
            shard.queue.push(ShardTask::Shutdown);
        }
        let mut shard_audit = Vec::with_capacity(self.workers.len());
        let mut cache_stats = Vec::with_capacity(self.workers.len());
        let mut ac_cache_stats = Vec::with_capacity(self.workers.len());
        let mut worker_panics = Vec::new();
        for (index, worker) in self.workers.drain(..).enumerate() {
            match worker.join() {
                Ok(report) => {
                    shard_audit.push(report.audit);
                    cache_stats.push(report.cache_stats);
                    ac_cache_stats.push(report.ac_cache_stats);
                }
                Err(payload) => {
                    // A panic that escaped supervision (e.g. in the shutdown
                    // epilogue). Reap it without re-panicking: capture the
                    // payload and keep the report's per-shard vectors aligned
                    // with placeholder slots.
                    worker_panics.push((index, panic_message(payload.as_ref())));
                    shard_audit.push(AuditLog::new(format!("{}-shard-{index}", self.shared.name)));
                    cache_stats.push(CacheStats::default());
                    ac_cache_stats.push(AcCacheStats::default());
                }
            }
        }
        // Workers are gone, so every enforced delivery is in its mailbox; closing now
        // lets consumers drain the backlog and then observe Disconnected.
        self.close_mailboxes();
        // Workers sealed their stores in the shutdown epilogue (before the joins
        // above returned), so these merged stats already cover the final fsyncs.
        let segment_stats = self.segment_stats();
        let (segments_sealed, unsynced_bytes) = segment_stats
            .as_ref()
            .map(|segments| (segments.segments_sealed, segments.unsynced_bytes))
            .unwrap_or((0, 0));
        let stats = self.stats();
        let (control_audit, admission_cache_stats) = {
            let mut directory = self.shared.directory.write();
            directory.control_audit.flush();
            let admission_cache_stats = directory.admission_cache.stats();
            let log = std::mem::replace(
                &mut directory.control_audit,
                BatchedAppender::new(format!("{}-control", self.shared.name), 1),
            )
            .into_log();
            (log, admission_cache_stats)
        };
        DataplaneReport {
            stats,
            shard_audit,
            control_audit,
            cache_stats,
            ac_cache_stats,
            admission_cache_stats,
            worker_panics,
            segments_sealed,
            unsynced_bytes,
            segment_stats,
        }
    }

    #[cfg(test)]
    pub(crate) fn block_shard(&self, shard: usize) -> Arc<std::sync::Barrier> {
        let barrier = Arc::new(std::sync::Barrier::new(2));
        self.shared.shards[shard].counters.in_flight.fetch_add(1, Ordering::SeqCst);
        self.shared.shards[shard].queue.push(ShardTask::Block(Arc::clone(&barrier)));
        barrier
    }
}

impl Drop for Dataplane {
    fn drop(&mut self) {
        // Shut workers down if `shutdown()` was never called, so threads never leak.
        if self.workers.is_empty() {
            return;
        }
        // Close mailboxes *before* joining: a shard parked on a full Block-policy
        // mailbox would otherwise never pop the Shutdown task and the join below
        // would hang forever. This is the abandon path — discarding undelivered
        // mailbox items is fine (`shutdown()` is the graceful path and closes only
        // after the workers have finished enqueueing).
        self.close_mailboxes();
        for shard in &self.shared.shards {
            shard.counters.in_flight.fetch_add(1, Ordering::SeqCst);
            shard.queue.push(ShardTask::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
