//! Consumer-facing streaming receivers: bounded per-subscriber mailboxes and the
//! [`Subscriber`] handle that drains them.
//!
//! The paper's guarantee is about what a subscriber *ultimately observes* — messages
//! admitted, IFC-checked and quenched per its context. The dataplane's shards enforce
//! per delivery; a bounded per-endpoint mailbox is the hand-off point where an
//! enforced (post-quench) body becomes visible to application code. In zero-copy mode the hand-off is an
//! `Arc<FrozenMessage>` — refcount bumps, never a payload copy — and in clone-each mode
//! it is the per-subscriber deep clone the baseline already paid for.
//!
//! Mailboxes are bounded. What happens on overflow is the subscriber's
//! [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Block`] — the delivering shard waits for mailbox space. The
//!   shard's ingress queue then fills behind it, which blocks publishers: end-to-end
//!   backpressure from a slow consumer to its producers, no message ever shed.
//! * [`OverflowPolicy::DropOldest`] — the oldest queued message is shed to admit the
//!   new one, the drop is counted ([`Subscriber::dropped`], `DataplaneStats`), and the
//!   shed delivery is evidenced as a
//!   [`legaliot_audit::AuditEvent::DeliveryDropped`] record, so the audit trail still
//!   accounts for every admitted-but-unobserved message.
//!
//! Closing is cooperative and never blocks the hot path: dropping (or
//! [`Subscriber::close`]-ing) the handle marks the mailbox closed, and shards simply
//! stop enqueueing to it — a flag check under the mailbox's own lock, no directory
//! write. A closed mailbox still hands out what it already holds; `recv` reports
//! [`RecvError::Disconnected`] only once the backlog is drained.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, PoisonError};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use legaliot_middleware::{AttributeValue, FrozenMessage, Message, MessageType};
use legaliot_obs::LatencyHistogram;

/// What a shard does when a delivery lands on a full mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Wait for the consumer to make space. The delivering shard stalls, its ingress
    /// queue fills, and publishers block in turn — lossless end-to-end backpressure.
    #[default]
    Block,
    /// Shed the oldest queued message to admit the new one. Every shed delivery is
    /// counted and evidenced as a `DeliveryDropped` audit record.
    DropOldest,
}

/// A message as a subscriber observes it: the post-quench body in whichever
/// representation the dataplane carried it.
#[derive(Debug, Clone)]
pub enum ReceivedMessage {
    /// Zero-copy delivery: shares the publisher-frozen payload buffer and name table
    /// (quenching only cleared presence bits). Cloning this is refcount bumps.
    Frozen(Arc<FrozenMessage>),
    /// Clone-each delivery: the per-subscriber deep clone the baseline mode makes.
    Thawed(Box<Message>),
}

impl ReceivedMessage {
    /// The message's type.
    pub fn message_type(&self) -> &MessageType {
        match self {
            ReceivedMessage::Frozen(m) => m.message_type(),
            ReceivedMessage::Thawed(m) => &m.message_type,
        }
    }

    /// The publishing endpoint's name.
    pub fn sender(&self) -> &str {
        match self {
            ReceivedMessage::Frozen(m) => m.sender(),
            ReceivedMessage::Thawed(m) => &m.sender,
        }
    }

    /// Simulated publish time (ms).
    pub fn sent_at_millis(&self) -> u64 {
        match self {
            ReceivedMessage::Frozen(m) => m.sent_at_millis(),
            ReceivedMessage::Thawed(m) => m.sent_at_millis,
        }
    }

    /// A present attribute's value, decoding on the fly in the frozen representation.
    /// Quenched attributes are absent in both representations.
    pub fn get(&self, name: &str) -> Option<AttributeValue> {
        match self {
            ReceivedMessage::Frozen(m) => m.get(name),
            ReceivedMessage::Thawed(m) => m.attributes.get(name).cloned(),
        }
    }

    /// Number of attributes the subscriber can observe (post-quench).
    pub fn attribute_count(&self) -> usize {
        match self {
            ReceivedMessage::Frozen(m) => m.attribute_count(),
            ReceivedMessage::Thawed(m) => m.attributes.len(),
        }
    }

    /// The shared frozen form, when this was a zero-copy delivery.
    pub fn frozen(&self) -> Option<&Arc<FrozenMessage>> {
        match self {
            ReceivedMessage::Frozen(m) => Some(m),
            ReceivedMessage::Thawed(_) => None,
        }
    }

    /// The mutable [`Message`] form (decodes the frozen representation; moves out of
    /// the thawed one).
    pub fn thaw(self) -> Message {
        match self {
            ReceivedMessage::Frozen(m) => m.thaw(),
            ReceivedMessage::Thawed(m) => *m,
        }
    }
}

/// Why [`Subscriber::recv`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The mailbox is closed (handle closed, endpoint deregistered, or the dataplane
    /// shut down) and its backlog is fully drained: no message will ever arrive.
    Disconnected,
}

/// Why [`Subscriber::try_recv`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is queued right now (more may still arrive).
    Empty,
    /// As [`RecvError::Disconnected`]: closed and drained.
    Disconnected,
}

/// Why [`Subscriber::recv_timeout`] returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the mailbox still empty but open.
    Timeout,
    /// As [`RecvError::Disconnected`]: closed and drained.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on a closed and drained mailbox")
    }
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("mailbox is empty"),
            TryRecvError::Disconnected => f.write_str("receiving on a closed and drained mailbox"),
        }
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting for a message"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on a closed and drained mailbox")
            }
        }
    }
}

impl std::error::Error for RecvError {}
impl std::error::Error for TryRecvError {}
impl std::error::Error for RecvTimeoutError {}

/// Outcome of a shard's attempt to enqueue a delivery (engine-internal).
#[derive(Debug)]
pub(crate) enum MailboxPush {
    /// The delivery is queued for the consumer.
    Enqueued,
    /// The delivery is queued; the returned oldest queued message was shed to make
    /// room (the caller audits it against its own source and message type).
    DroppedOldest(ReceivedMessage),
    /// The mailbox is closed; the delivery was discarded without queueing.
    Closed,
}

#[derive(Debug, Default)]
struct MailboxInner {
    queue: VecDeque<ReceivedMessage>,
    /// Deliveries shed by drop-oldest overflow since the mailbox opened.
    dropped: u64,
}

/// The bounded hand-off queue between a subscriber's shard and its consumer.
///
/// Shards push under the engine's directory *read* lock; consumers pop through a
/// [`Subscriber`] without touching the directory at all, so a draining consumer can
/// never deadlock against the control plane. The `closed` flag is additionally
/// mirrored in an atomic so the shard's common case (open mailbox) and the
/// engine's teardown broadcast stay cheap.
#[derive(Debug)]
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
    closed: AtomicBool,
}

impl Mailbox {
    pub(crate) fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        Mailbox {
            inner: Mutex::new(MailboxInner::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            closed: AtomicBool::new(false),
        }
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Marks the mailbox closed and wakes every waiter (consumers observe
    /// `Disconnected` once drained; a shard blocked on `push` discards and moves on).
    pub(crate) fn close(&self) {
        // The store happens under the lock so close linearizes against `push`: a
        // push holding the lock either completes before the close (a delivery that
        // legitimately arrived first) or re-checks the flag under the lock and
        // discards. Waiters either see `closed` before parking or are woken by the
        // notifies below.
        let guard = self.inner.lock();
        self.closed.store(true, Ordering::Release);
        drop(guard);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Enqueues a delivery per the overflow policy. Never blocks under
    /// [`OverflowPolicy::DropOldest`]; under [`OverflowPolicy::Block`] waits until the
    /// consumer makes space or the mailbox closes.
    ///
    /// When `stall` is provided (telemetry enabled), the time a Block-policy push
    /// spends parked on the full mailbox is recorded there — one sample per push that
    /// actually stalled, so the fast path takes no timestamps.
    pub(crate) fn push(
        &self,
        item: ReceivedMessage,
        stall: Option<&LatencyHistogram>,
    ) -> MailboxPush {
        // Cheap lock-free fast path for long-closed mailboxes; the authoritative
        // check is re-done under the lock, where it linearizes against `close`.
        if self.is_closed() {
            return MailboxPush::Closed;
        }
        let mut inner = self.inner.lock();
        if self.is_closed() {
            return MailboxPush::Closed;
        }
        let mut stalled_since: Option<Instant> = None;
        let record_stall = |since: Option<Instant>| {
            if let (Some(histogram), Some(since)) = (stall, since) {
                histogram.record(since.elapsed().as_nanos() as u64);
            }
        };
        while inner.queue.len() >= self.capacity {
            match self.policy {
                OverflowPolicy::DropOldest => {
                    let shed = inner.queue.pop_front().expect("full implies non-empty");
                    inner.dropped += 1;
                    inner.queue.push_back(item);
                    drop(inner);
                    self.not_empty.notify_one();
                    return MailboxPush::DroppedOldest(shed);
                }
                OverflowPolicy::Block => {
                    if stall.is_some() && stalled_since.is_none() {
                        stalled_since = Some(Instant::now());
                    }
                    inner = self.not_full.wait(inner).unwrap_or_else(PoisonError::into_inner);
                    if self.is_closed() {
                        drop(inner);
                        record_stall(stalled_since);
                        return MailboxPush::Closed;
                    }
                }
            }
        }
        inner.queue.push_back(item);
        drop(inner);
        record_stall(stalled_since);
        self.not_empty.notify_one();
        MailboxPush::Enqueued
    }

    fn pop(inner: &mut MailboxInner) -> Option<ReceivedMessage> {
        inner.queue.pop_front()
    }

    fn recv(&self) -> Result<ReceivedMessage, RecvError> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = Self::pop(&mut inner) {
                drop(inner);
                self.not_full.notify_one();
                return Ok(item);
            }
            if self.is_closed() {
                return Err(RecvError::Disconnected);
            }
            inner = self.not_empty.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn try_recv(&self) -> Result<ReceivedMessage, TryRecvError> {
        let mut inner = self.inner.lock();
        match Self::pop(&mut inner) {
            Some(item) => {
                drop(inner);
                self.not_full.notify_one();
                Ok(item)
            }
            None if self.is_closed() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<ReceivedMessage, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(item) = Self::pop(&mut inner) {
                drop(inner);
                self.not_full.notify_one();
                return Ok(item);
            }
            if self.is_closed() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    fn drain(&self) -> Vec<ReceivedMessage> {
        let mut inner = self.inner.lock();
        let items: Vec<ReceivedMessage> = inner.queue.drain(..).collect();
        drop(inner);
        if !items.is_empty() {
            self.not_full.notify_all();
        }
        items
    }

    fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

/// A consumer's handle on one endpoint's mailbox, opened with
/// [`crate::Dataplane::open_subscriber`] (or
/// [`crate::Dataplane::subscribe_receiver`]).
///
/// The handle is the mailbox's lifetime: dropping it (or calling
/// [`Subscriber::close`]) closes the mailbox, after which shards stop enqueueing and —
/// once the backlog is drained — every receive reports `Disconnected`. The handle
/// stays usable after the dataplane itself shuts down: whatever was enqueued before
/// shutdown is still received, then `Disconnected`.
#[derive(Debug)]
pub struct Subscriber {
    name: Arc<str>,
    mailbox: Arc<Mailbox>,
}

impl Subscriber {
    pub(crate) fn new(name: Arc<str>, mailbox: Arc<Mailbox>) -> Self {
        Subscriber { name, mailbox }
    }

    /// The endpoint this handle receives for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Blocks until the next enforced delivery arrives.
    ///
    /// # Errors
    ///
    /// [`RecvError::Disconnected`] once the mailbox is closed *and* drained.
    pub fn recv(&self) -> Result<ReceivedMessage, RecvError> {
        self.mailbox.recv()
    }

    /// Returns the next delivery without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued;
    /// [`TryRecvError::Disconnected`] once closed and drained.
    pub fn try_recv(&self) -> Result<ReceivedMessage, TryRecvError> {
        self.mailbox.try_recv()
    }

    /// Blocks for at most `timeout` for the next delivery.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the timeout elapses;
    /// [`RecvTimeoutError::Disconnected`] once closed and drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ReceivedMessage, RecvTimeoutError> {
        self.mailbox.recv_timeout(timeout)
    }

    /// Takes everything currently queued in one batch, without blocking (possibly
    /// empty). Frees the whole mailbox capacity at once, so a periodic drain loop is
    /// the cheapest way to consume under [`OverflowPolicy::Block`].
    pub fn drain(&self) -> Vec<ReceivedMessage> {
        self.mailbox.drain()
    }

    /// Number of deliveries currently queued.
    pub fn len(&self) -> usize {
        self.mailbox.len()
    }

    /// Whether the mailbox is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deliveries shed by [`OverflowPolicy::DropOldest`] since this handle opened
    /// (each also counted in `DataplaneStats::receiver_dropped` and evidenced as a
    /// `DeliveryDropped` audit record).
    pub fn dropped(&self) -> u64 {
        self.mailbox.dropped()
    }

    /// Whether the mailbox is closed (shards no longer enqueue; queued backlog, if
    /// any, is still receivable).
    pub fn is_closed(&self) -> bool {
        self.mailbox.is_closed()
    }

    /// Closes the mailbox: shards stop enqueueing immediately; receives keep
    /// returning the backlog, then `Disconnected`. Idempotent; also run by `Drop`.
    pub fn close(&self) {
        self.mailbox.close();
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        self.mailbox.close();
        // This handle was the mailbox's only consumer: nothing can ever receive the
        // backlog, so release it now instead of pinning up to `capacity` payload
        // buffers in the endpoint directory until deregistration. (An explicit
        // `close()` keeps the backlog readable through the still-live handle; only
        // the handle's death discards it.)
        self.mailbox.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn item(tag: u64) -> ReceivedMessage {
        use legaliot_ifc::SecurityContext;
        let mut message = Message::new("t", SecurityContext::public());
        message.sent_at_millis = tag;
        ReceivedMessage::Thawed(Box::new(message))
    }

    #[test]
    fn drop_oldest_sheds_and_counts() {
        let mailbox = Mailbox::new(2, OverflowPolicy::DropOldest);
        assert!(matches!(mailbox.push(item(1), None), MailboxPush::Enqueued));
        assert!(matches!(mailbox.push(item(2), None), MailboxPush::Enqueued));
        // The shed message is returned so the caller can audit it.
        match mailbox.push(item(3), None) {
            MailboxPush::DroppedOldest(shed) => assert_eq!(shed.sent_at_millis(), 1),
            other => panic!("expected DroppedOldest, got {other:?}"),
        }
        assert_eq!(mailbox.dropped(), 1);
        let received: Vec<u64> = mailbox.drain().into_iter().map(|m| m.sent_at_millis()).collect();
        assert_eq!(received, vec![2, 3]);
    }

    #[test]
    fn block_policy_waits_for_the_consumer() {
        let mailbox = Arc::new(Mailbox::new(1, OverflowPolicy::Block));
        assert!(matches!(mailbox.push(item(1), None), MailboxPush::Enqueued));
        let producer = {
            let mailbox = Arc::clone(&mailbox);
            thread::spawn(move || mailbox.push(item(2), None))
        };
        // The producer is parked on the full mailbox until this recv frees a slot.
        let first = mailbox.recv().unwrap();
        assert_eq!(first.sent_at_millis(), 1);
        assert!(matches!(producer.join().unwrap(), MailboxPush::Enqueued));
        assert_eq!(mailbox.recv().unwrap().sent_at_millis(), 2);
        assert_eq!(mailbox.dropped(), 0);
    }

    #[test]
    fn close_unblocks_producers_and_consumers() {
        let mailbox = Arc::new(Mailbox::new(1, OverflowPolicy::Block));
        mailbox.push(item(1), None);
        let blocked_producer = {
            let mailbox = Arc::clone(&mailbox);
            thread::spawn(move || mailbox.push(item(2), None))
        };
        let blocked_consumer = {
            let mailbox = Arc::new(Mailbox::new(1, OverflowPolicy::Block));
            let handle = Arc::clone(&mailbox);
            let consumer = thread::spawn(move || handle.recv());
            thread::sleep(Duration::from_millis(20));
            mailbox.close();
            consumer
        };
        thread::sleep(Duration::from_millis(20));
        mailbox.close();
        assert!(matches!(blocked_producer.join().unwrap(), MailboxPush::Closed));
        assert!(matches!(blocked_consumer.join().unwrap(), Err(RecvError::Disconnected)));
        // The backlog enqueued before the close is still received, then Disconnected.
        assert_eq!(mailbox.recv().unwrap().sent_at_millis(), 1);
        assert_eq!(mailbox.recv().unwrap_err(), RecvError::Disconnected);
        assert_eq!(mailbox.try_recv().unwrap_err(), TryRecvError::Disconnected);
        assert!(matches!(mailbox.push(item(9), None), MailboxPush::Closed));
    }

    #[test]
    fn try_recv_and_timeout_report_empty_vs_disconnected() {
        let mailbox = Mailbox::new(4, OverflowPolicy::Block);
        assert_eq!(mailbox.try_recv().unwrap_err(), TryRecvError::Empty);
        assert_eq!(
            mailbox.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        mailbox.push(item(5), None);
        assert_eq!(mailbox.recv_timeout(Duration::from_millis(10)).unwrap().sent_at_millis(), 5);
        mailbox.close();
        assert_eq!(
            mailbox.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }

    #[test]
    fn error_display() {
        assert!(RecvError::Disconnected.to_string().contains("closed"));
        assert!(TryRecvError::Empty.to_string().contains("empty"));
        assert!(TryRecvError::Disconnected.to_string().contains("closed"));
        assert!(RecvTimeoutError::Timeout.to_string().contains("timed out"));
        assert!(RecvTimeoutError::Disconnected.to_string().contains("closed"));
    }
}
