//! # legaliot-dataplane
//!
//! A sharded, decision-cached publish/subscribe enforcement engine on top of the
//! `legaliot` middleware stack — the paper's §8.2.2 enforcement model (admission checks
//! at channel establishment, IFC on every message, re-evaluation when a security
//! context changes) scaled from a synchronous single-threaded bus to a multi-threaded
//! dataplane.
//!
//! Architecture (see the README's "Dataplane & scaling" section for the full picture):
//!
//! * **Sharding** — components hash onto `N` worker shards by name; each shard runs its
//!   own thread and enforces the traffic of the subscribers it owns. Ingress queues are
//!   bounded ([`queue::BoundedQueue`]): full queues backpressure publishers
//!   ([`Dataplane::publish`] blocks, [`Dataplane::try_publish`] reports
//!   [`DataplaneError::QueueFull`]).
//! * **Zero-copy payloads** — [`Dataplane::publish_message`] freezes a message once at
//!   ingress ([`legaliot_middleware::FrozenMessage`]: interned attribute-name table,
//!   values in one shared [`bytes`-backed](legaliot_middleware::Payload) buffer) and
//!   fans an `Arc` of it out to the shards. Per-delivery source quenching (Fig. 10) is
//!   a cached bitmask over the shared buffer instead of a map clone; quenched
//!   attribute names are evidenced in the per-shard audit
//!   ([`legaliot_audit::AuditEvent::MessageQuenched`]). The clone-per-delivery
//!   baseline is kept selectable ([`PayloadMode::CloneEach`]) so the win stays
//!   measured, not asserted.
//! * **Decision caching** — each shard holds a private [`legaliot_ifc::DecisionCache`]
//!   keyed by the stable 64-bit hashes of the (source, destination) security contexts.
//!   Lookups always key on the entities' *current* hashes, and a context change
//!   broadcasts invalidation of the superseded hash to every shard, so the paper's
//!   re-evaluation-on-context-change semantics hold while redundant lattice walks are
//!   skipped on the hot path. Contextual AC decisions (per-message, at message-type
//!   granularity) are cached per shard too
//!   ([`legaliot_middleware::AdmissionCache`]), keyed on the context keys the rules
//!   actually read and invalidated through the engine's
//!   [`legaliot_context::ContextStore`] subscriptions.
//! * **Batched, tamper-evident audit** — every shard writes its own hash-chained log
//!   through a [`legaliot_audit::BatchedAppender`]; in
//!   [`AuditDetail::Summarised`] mode repeated checks of a pair fold into one
//!   `FlowSummary` record (whose counts total every check in the window) while IFC
//!   denials and first-of-pair checks stay individually recorded.
//! * **Admission reuse** — subscriptions run the exact bus admission sequence via
//!   [`legaliot_middleware::admission::admit_channel`] (isolation → access control →
//!   IFC), audited on a control-plane log.
//! * **Streaming receivers** — [`Dataplane::open_subscriber`] /
//!   [`Dataplane::subscribe_receiver`] hand consumers a [`Subscriber`] over a bounded
//!   per-endpoint mailbox ([`subscriber`]): enforced, post-quench bodies arrive as
//!   shared `Arc<FrozenMessage>`s (zero-copy end to end), with
//!   `recv`/`try_recv`/`recv_timeout`/`drain` receives and a configurable overflow
//!   policy — block the shard (lossless backpressure) or drop-oldest with counted,
//!   audited [`legaliot_audit::AuditEvent::DeliveryDropped`] evidence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod failpoint;
pub mod queue;
pub mod subscriber;
pub mod telemetry;
pub mod topologies;

mod shard;

pub use engine::{
    AuditDetail, Dataplane, DataplaneConfig, DataplaneError, DataplaneReport, DataplaneStats,
    PayloadMode, PersistenceConfig,
};
pub use failpoint::{FailpointRegistry, FailpointSite, FailpointSpec, FaultKind};
pub use queue::QueueContention;
pub use subscriber::{
    OverflowPolicy, ReceivedMessage, RecvError, RecvTimeoutError, Subscriber, TryRecvError,
};
pub use telemetry::{ShardTelemetrySnapshot, Stage, TelemetrySnapshot};
pub use topologies::{
    payload_schema, sample_message, smart_city, smart_home, Topology, TopologyBuilder,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use legaliot_context::{ContextSnapshot, Timestamp};
    use legaliot_ifc::SecurityContext;
    use legaliot_middleware::{Component, DeliveryOutcome, Principal};

    fn snap() -> ContextSnapshot {
        ContextSnapshot::default()
    }

    fn endpoint(name: &str, secrecy: &[&str]) -> Component {
        Component::builder(name, Principal::new("owner"))
            .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
            .build()
    }

    /// A 2-shard dataplane with four endpoints and two legal channels a→b, c→d, where
    /// every endpoint has a distinct security context.
    fn two_pair_plane(config: DataplaneConfig) -> Dataplane {
        let dataplane = Dataplane::new("test", config);
        for (name, secrecy) in [
            ("a", vec!["t"]),
            ("b", vec!["t", "b-only"]),
            ("c", vec!["u"]),
            ("d", vec!["u", "d-only"]),
        ] {
            let secrecy: Vec<&str> = secrecy;
            dataplane.register(endpoint(name, &secrecy)).unwrap();
            dataplane.allow_sends_to(name);
        }
        assert!(dataplane.subscribe("a", "b", &snap(), Timestamp(1)).unwrap().is_delivered());
        assert!(dataplane.subscribe("c", "d", &snap(), Timestamp(1)).unwrap().is_delivered());
        dataplane
    }

    #[test]
    fn publish_enforces_and_counts() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        for round in 0..10 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
            dataplane.publish("c", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.published, 20);
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.denied, 0);
        // Two unique pairs: two misses, the rest hits.
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_hits, 18);
        assert!(stats.cache_hit_ratio() > 0.85);
    }

    /// Acceptance criterion: a context change invalidates cached decisions for exactly
    /// the affected entity — its next message is a cache miss (fresh lattice walk),
    /// while unrelated pairs keep hitting their cached decisions.
    #[test]
    fn context_change_invalidates_exactly_the_affected_entity() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        // Warm the cache for both pairs.
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.publish("c", Timestamp(10)).unwrap();
        dataplane.publish("a", Timestamp(11)).unwrap();
        dataplane.publish("c", Timestamp(11)).unwrap();
        dataplane.drain();
        let warm = dataplane.stats();
        assert_eq!((warm.cache_misses, warm.cache_hits), (2, 2));

        // `a` changes context (still flow-legal into b): its cached decision must die.
        dataplane
            .set_context(
                "a",
                SecurityContext::from_names(["t", "b-only"], Vec::<&str>::new()),
                Timestamp(12),
            )
            .unwrap();
        dataplane.drain();
        dataplane.publish("a", Timestamp(13)).unwrap();
        dataplane.publish("c", Timestamp(13)).unwrap();
        dataplane.drain();
        let after = dataplane.stats();
        // Exactly one new miss (a→b recomputed) and one new hit (c→d untouched).
        assert_eq!(after.cache_misses, warm.cache_misses + 1);
        assert_eq!(after.cache_hits, warm.cache_hits + 1);
        assert_eq!(after.delivered, 6);

        // The per-shard caches saw an invalidation for `a`'s old context.
        let report = dataplane.shutdown();
        let invalidated: u64 = report.cache_stats.iter().map(|s| s.invalidated).sum();
        assert_eq!(invalidated, 1);
    }

    /// §8.2.2 re-evaluation semantics: after a context change makes an established
    /// channel illegal, the very next message on it is denied (and audited), without
    /// any re-subscription step.
    #[test]
    fn context_change_reevaluates_established_channels() {
        let config =
            DataplaneConfig { audit_detail: AuditDetail::Summarised, ..DataplaneConfig::default() };
        let dataplane = two_pair_plane(config);
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().delivered, 1);

        // `a` gains a secrecy tag `b` does not hold: a→b becomes illegal.
        dataplane
            .set_context(
                "a",
                SecurityContext::from_names(["t", "quarantine"], Vec::<&str>::new()),
                Timestamp(11),
            )
            .unwrap();
        dataplane.publish("a", Timestamp(12)).unwrap();
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.denied, 1);

        // The denial is individually evidenced even in summarised mode, and every
        // shard chain verifies.
        let report = dataplane.shutdown();
        let denied_records: usize =
            report.shard_audit.iter().map(|log| log.denied_flows().count()).sum();
        assert_eq!(denied_records, 1);
        for log in &report.shard_audit {
            assert!(log.verify_chain().is_intact());
        }
        assert!(report.control_audit.verify_chain().is_intact());
        // The control log evidences the subscriptions and the label change.
        use legaliot_audit::AuditEventKind;
        assert_eq!(report.control_audit.of_kind(AuditEventKind::ChannelChanged).count(), 2);
        assert_eq!(report.control_audit.of_kind(AuditEventKind::LabelChanged).count(), 1);
    }

    #[test]
    fn subscription_admission_refuses_illegal_edges() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        // b→a is an illegal flow (a lacks `b-only`): admission refuses, no subscription.
        let outcome = dataplane.subscribe("b", "a", &snap(), Timestamp(2)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::DeniedByIfc(_)));
        assert_eq!(dataplane.publish("b", Timestamp(3)).unwrap(), 0);
        // An endpoint with no AC rule is default-deny.
        dataplane.register(endpoint("locked", &["t"])).unwrap();
        let outcome = dataplane.subscribe("a", "locked", &snap(), Timestamp(4)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));
        // Unknown endpoints are errors, not outcomes.
        assert_eq!(
            dataplane.subscribe("ghost", "a", &snap(), Timestamp(5)),
            Err(DataplaneError::UnknownEndpoint { name: "ghost".into() })
        );
        assert_eq!(
            dataplane.publish("ghost", Timestamp(6)),
            Err(DataplaneError::UnknownEndpoint { name: "ghost".into() })
        );
    }

    #[test]
    fn isolation_denies_in_flight_traffic() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        dataplane.set_isolated("b", true, Timestamp(9)).unwrap();
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().denied, 1);
        dataplane.set_isolated("b", false, Timestamp(11)).unwrap();
        dataplane.publish("a", Timestamp(12)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().delivered, 1);

        // The isolation change is control-plane evidence, and the denied delivery is
        // totalled in the pair summary.
        let report = dataplane.shutdown();
        use legaliot_audit::{AuditEvent, AuditEventKind};
        assert_eq!(report.control_audit.of_kind(AuditEventKind::Reconfigured).count(), 2);
        let summary = report
            .merged_timeline()
            .into_iter()
            .find_map(|r| match r.event {
                AuditEvent::FlowSummary { ref source, allowed, denied, .. } if source == "a" => {
                    Some((allowed, denied))
                }
                _ => None,
            })
            .expect("pair summary present");
        assert_eq!(summary, (1, 1));
    }

    #[test]
    fn try_publish_reports_backpressure() {
        let config = DataplaneConfig { shards: 1, queue_capacity: 2, ..Default::default() };
        let dataplane = two_pair_plane(config);
        // Park the single worker so the queue cannot drain.
        let barrier = dataplane.block_shard(0);
        let mut full = false;
        for round in 0..4 {
            match dataplane.try_publish("a", Timestamp(10 + round)) {
                Ok(_) => {}
                Err(DataplaneError::QueueFull { shard: 0, capacity: 2 }) => {
                    full = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(full, "bounded queue must report backpressure");
        barrier.wait();
        dataplane.drain();
        // Everything that was enqueued still got enforced.
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, stats.published);
    }

    #[test]
    fn unsubscribe_and_deregister_stop_fanout() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        dataplane.unsubscribe("a", "b").unwrap();
        assert_eq!(dataplane.publish("a", Timestamp(10)).unwrap(), 0);
        dataplane.deregister("d").unwrap();
        assert_eq!(dataplane.publish("c", Timestamp(11)).unwrap(), 0);
        assert_eq!(
            dataplane.deregister("d"),
            Err(DataplaneError::UnknownEndpoint { name: "d".into() })
        );
        assert_eq!(
            dataplane.register(endpoint("a", &["t"])),
            Err(DataplaneError::DuplicateEndpoint { name: "a".into() })
        );
    }

    #[test]
    fn full_audit_records_every_message() {
        let config = DataplaneConfig {
            audit_detail: AuditDetail::Full,
            cache_decisions: false,
            shards: 2,
            ..Default::default()
        };
        let dataplane = two_pair_plane(config);
        for round in 0..5 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let report = dataplane.shutdown();
        use legaliot_audit::AuditEventKind;
        let flow_records: usize = report
            .shard_audit
            .iter()
            .map(|log| log.of_kind(AuditEventKind::FlowChecked).count())
            .sum();
        assert_eq!(flow_records, 5);
        for log in &report.shard_audit {
            assert!(log.verify_chain().is_intact());
        }
    }

    /// Full-audit mode cannot emit a `FlowChecked` record for denials that never
    /// reach the IFC stage (isolation, per-message AC) — but they must still be
    /// evidenced, as per-pair `FlowSummary` records at shutdown.
    #[test]
    fn full_audit_evidences_no_flow_check_denials() {
        use legaliot_audit::AuditEvent;
        let config = DataplaneConfig { audit_detail: AuditDetail::Full, ..Default::default() };
        let dataplane = two_pair_plane(config);
        dataplane.set_isolated("b", true, Timestamp(9)).unwrap();
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().denied, 1);
        let report = dataplane.shutdown();
        let summary = report
            .merged_timeline()
            .into_iter()
            .find_map(|r| match r.event {
                AuditEvent::FlowSummary { ref source, denied, .. } if source == "a" => Some(denied),
                _ => None,
            })
            .expect("isolation denial is summarised even in full mode");
        assert_eq!(summary, 1);
    }

    #[test]
    fn summarised_audit_folds_repeats_into_flow_summary() {
        let config =
            DataplaneConfig { audit_detail: AuditDetail::Summarised, ..Default::default() };
        let dataplane = two_pair_plane(config);
        for round in 0..50 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let report = dataplane.shutdown();
        use legaliot_audit::{AuditEvent, AuditEventKind};
        let all: Vec<_> = report.merged_timeline();
        let full_records =
            all.iter().filter(|r| r.event.kind() == AuditEventKind::FlowChecked).count();
        let summaries: Vec<_> =
            all.iter().filter(|r| r.event.kind() == AuditEventKind::FlowSummary).cloned().collect();
        // One full record (first check) + one summary covering all 50.
        assert_eq!(full_records, 1);
        assert_eq!(summaries.len(), 1);
        match &summaries[0].event {
            AuditEvent::FlowSummary { allowed, denied, source, destination, .. } => {
                assert_eq!((source.as_str(), destination.as_str()), ("a", "b"));
                assert_eq!(*allowed, 50);
                assert_eq!(*denied, 0);
            }
            other => panic!("expected FlowSummary, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(DataplaneError::UnknownEndpoint { name: "x".into() }.to_string().contains("x"));
        assert!(DataplaneError::QueueFull { shard: 3, capacity: 8 }
            .to_string()
            .contains("shard 3"));
        assert!(DataplaneError::ShardUnavailable { shard: 2 }
            .to_string()
            .contains("shard 2 is unavailable"));
        assert!(DataplaneError::DuplicateEndpoint { name: "x".into() }
            .to_string()
            .contains("already"));
        assert!(DataplaneError::SchemaViolation { reason: "r".into() }
            .to_string()
            .contains("schema"));
        assert!(DataplaneError::UnknownSchema { message_type: "mt".into() }
            .to_string()
            .contains("mt"));
    }

    /// Test schema: `patient` carries a message-level `secret-id` tag that endpoint
    /// `b` (secrecy `{t, b-only}`) does not hold, so deliveries a→b quench it.
    fn reading_schema() -> legaliot_middleware::MessageSchema {
        use legaliot_middleware::AttributeKind;
        legaliot_middleware::MessageSchema::new("reading")
            .attribute("value", AttributeKind::Float)
            .sensitive_attribute(
                "patient",
                AttributeKind::Text,
                legaliot_ifc::Label::from_names(["secret-id"]),
            )
    }

    fn reading_message() -> legaliot_middleware::Message {
        use legaliot_middleware::AttributeValue;
        legaliot_middleware::Message::new("reading", SecurityContext::public())
            .with("value", AttributeValue::Float(72.0))
            .with("patient", AttributeValue::Text("ann".into()))
    }

    #[test]
    fn payload_publish_quenches_counts_and_audits() {
        use legaliot_audit::AuditEventKind;
        use legaliot_middleware::AttributeValue;

        let config = DataplaneConfig { retain_deliveries: 8, ..DataplaneConfig::default() };
        let dataplane = two_pair_plane(config);
        dataplane.register_schema(reading_schema()).unwrap();

        // Payload publishing is schema-driven: unknown types and violations error.
        let unknown = legaliot_middleware::Message::new("mystery", SecurityContext::public());
        assert!(matches!(
            dataplane.publish_message("a", &unknown, Timestamp(9)),
            Err(DataplaneError::UnknownSchema { .. })
        ));
        let bad = reading_message().with("value", AttributeValue::Text("high".into()));
        assert!(matches!(
            dataplane.publish_message("a", &bad, Timestamp(9)),
            Err(DataplaneError::SchemaViolation { .. })
        ));

        for t in 10..14 {
            assert_eq!(
                dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap(),
                1
            );
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 4);
        // `b` lacks `secret-id`: exactly one attribute quenched per delivery.
        assert_eq!(stats.quenched_attributes, 4);
        assert!(stats.payload_bytes > 0);
        // Per-message AC is cache-amortised: one rule-set evaluation, three replays.
        assert_eq!((stats.ac_cache_misses, stats.ac_cache_hits), (1, 3));
        assert!(stats.ac_cache_hit_ratio() > 0.7);

        // Retained deliveries expose the post-quench bodies.
        let inbox = dataplane.take_delivered("b").unwrap();
        assert_eq!(inbox.len(), 4);
        for message in &inbox {
            assert!(!message.attributes.contains_key("patient"));
            assert_eq!(message.attributes["value"], AttributeValue::Float(72.0));
            assert_eq!(message.sender, "a");
        }
        assert!(dataplane.take_delivered("b").unwrap().is_empty());
        assert!(dataplane.take_delivered("ghost").is_err());

        // Quenching is evidenced once per fresh mask in summarised mode, and every
        // shard chain stays intact.
        let report = dataplane.shutdown();
        let quench_records: usize = report
            .shard_audit
            .iter()
            .map(|log| log.of_kind(AuditEventKind::MessageQuenched).count())
            .sum();
        assert_eq!(quench_records, 1);
        assert!(report.shard_audit.iter().all(|log| log.verify_chain().is_intact()));
        assert_eq!(report.ac_cache_stats.iter().map(|s| s.hits).sum::<u64>(), 3);
    }

    #[test]
    fn quench_masks_follow_destination_context_changes() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        dataplane.register_schema(reading_schema()).unwrap();
        dataplane.publish_message("a", &reading_message(), Timestamp(10)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().quenched_attributes, 1);

        // `b` gains the `secret-id` tag: the cached quench mask for its old context
        // must not survive, and the next delivery carries the full message.
        dataplane
            .set_context(
                "b",
                SecurityContext::from_names(["t", "b-only", "secret-id"], Vec::<&str>::new()),
                Timestamp(11),
            )
            .unwrap();
        dataplane.publish_message("a", &reading_message(), Timestamp(12)).unwrap();
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.quenched_attributes, 1);
    }

    /// The clone-per-delivery baseline must be semantically identical to the
    /// zero-copy path — same deliveries, same quenching, same bytes, same bodies —
    /// so the benchmark compares representations, not behaviours.
    #[test]
    fn clone_each_baseline_matches_zero_copy_semantics() {
        let mut observed = Vec::new();
        for mode in [PayloadMode::ZeroCopy, PayloadMode::CloneEach] {
            let cached = mode == PayloadMode::ZeroCopy;
            let config = DataplaneConfig {
                payload_mode: mode,
                cache_decisions: cached,
                cache_ac_decisions: cached,
                retain_deliveries: 4,
                ..DataplaneConfig::default()
            };
            let dataplane = two_pair_plane(config);
            dataplane.register_schema(reading_schema()).unwrap();
            for t in 10..13 {
                dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap();
            }
            dataplane.drain();
            let stats = dataplane.stats();
            let inbox = dataplane.take_delivered("b").unwrap();
            observed.push((stats.delivered, stats.quenched_attributes, stats.payload_bytes, inbox));
        }
        assert_eq!(observed[0], observed[1]);
    }

    /// Satellite acceptance: a rule reading `patient.heart-rate` is re-evaluated (and
    /// flips its decision) after `ContextStore::set` bumps that key, on every shard.
    #[test]
    fn ac_cache_invalidation_flips_decisions_across_shards() {
        use legaliot_middleware::{AccessRule, Operation, Subject};
        use legaliot_policy::Condition;

        let store = Arc::new(legaliot_context::ContextStore::new());
        store.set("patient.heart-rate", 80i64, Timestamp(0));
        let config = DataplaneConfig { shards: 4, ..DataplaneConfig::default() };
        let dataplane = Dataplane::with_context_store("ac-cache-test", config, Arc::clone(&store));
        dataplane.register(endpoint("pub", &["t"])).unwrap();
        let subscribers = ["s-alpha", "s-beta", "s-gamma", "s-delta", "s-epsilon", "s-zeta"];
        for name in subscribers {
            dataplane.register(endpoint(name, &["t", "sink"])).unwrap();
            dataplane.with_access(|access| {
                access.add_rule(
                    name,
                    AccessRule::allow(Subject::Anyone, Operation::Send, None)
                        .when(Condition::number_below("patient.heart-rate", 120.0)),
                );
            });
        }
        let snapshot = store.snapshot();
        for name in subscribers {
            assert!(dataplane
                .subscribe("pub", name, &snapshot, Timestamp(1))
                .unwrap()
                .is_delivered());
        }
        // The subscribers must actually span shards for this test to mean anything.
        let shards: std::collections::HashSet<usize> =
            subscribers.iter().map(|name| dataplane.shard_of(name)).collect();
        assert!(shards.len() >= 2, "subscribers landed on one shard");

        dataplane.register_schema(reading_schema()).unwrap();
        let message = reading_message();
        for t in 2..4 {
            assert_eq!(dataplane.publish_message("pub", &message, Timestamp(t)).unwrap(), 6);
        }
        dataplane.drain();
        let warm = dataplane.stats();
        assert_eq!((warm.delivered, warm.denied), (12, 0));
        assert!(warm.ac_cache_hits >= 6);

        // Bump the key the rule reads: every shard must drop its cached allow and
        // deny the next delivery.
        store.set("patient.heart-rate", 150i64, Timestamp(4));
        dataplane.publish_message("pub", &message, Timestamp(5)).unwrap();
        dataplane.drain();
        let high = dataplane.stats();
        assert_eq!((high.delivered, high.denied), (12, 6));

        // And back below the threshold: deliveries resume.
        store.set("patient.heart-rate", 90i64, Timestamp(6));
        dataplane.publish_message("pub", &message, Timestamp(7)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().delivered, 18);

        let report = dataplane.shutdown();
        let invalidated: u64 = report.ac_cache_stats.iter().map(|s| s.invalidated).sum();
        assert!(invalidated >= 6, "each subscriber's cached decision was dropped twice");
    }

    /// Tentpole acceptance: the streaming receiver observes exactly the enforced,
    /// post-quench bodies, zero-copy (the mailbox hand-off shares the frozen payload
    /// buffer; nothing is re-encoded or deep-cloned).
    #[test]
    fn subscriber_receives_post_quench_bodies_zero_copy() {
        use legaliot_middleware::AttributeValue;

        let dataplane = two_pair_plane(DataplaneConfig::default());
        dataplane.register_schema(reading_schema()).unwrap();
        let receiver = dataplane.open_subscriber("b").unwrap();
        assert_eq!(receiver.name(), "b");
        // A mailbox has exactly one live handle.
        assert_eq!(
            dataplane.open_subscriber("b").unwrap_err(),
            DataplaneError::ReceiverAttached { name: "b".into() }
        );
        for t in 10..13 {
            dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.receiver_enqueued, 3);
        assert_eq!(stats.receiver_dropped, 0);
        let received: Vec<_> = receiver.drain();
        assert_eq!(received.len(), 3);
        for message in &received {
            assert_eq!(message.sender(), "a");
            // `b` lacks `secret-id`: the subscriber never observes `patient`.
            assert!(message.get("patient").is_none());
            assert_eq!(message.get("value"), Some(AttributeValue::Float(72.0)));
            assert_eq!(message.attribute_count(), 1);
        }
        // Zero-copy witness: a second subscriber receiving the same publish observes
        // the *same* frozen payload buffer (the fan-out and the mailbox hand-off are
        // refcount bumps, never payload copies).
        dataplane.register(endpoint("b2", &["t", "b-only"])).unwrap();
        dataplane.allow_sends_to("b2");
        assert!(dataplane.subscribe("a", "b2", &snap(), Timestamp(14)).unwrap().is_delivered());
        let receiver2 = dataplane.open_subscriber("b2").unwrap();
        dataplane.publish_message("a", &reading_message(), Timestamp(15)).unwrap();
        dataplane.drain();
        let on_b = receiver.recv().unwrap();
        let on_b2 = receiver2.recv().unwrap();
        assert!(std::ptr::eq(
            on_b.frozen().expect("zero-copy mode").payload().as_slice().as_ptr(),
            on_b2.frozen().expect("zero-copy mode").payload().as_slice().as_ptr(),
        ));
        drop(receiver2);

        // Dropping the handle closes the mailbox: shards stop enqueueing (no hang,
        // no error), and the endpoint can be re-opened for a fresh mailbox.
        drop(receiver);
        dataplane.publish_message("a", &reading_message(), Timestamp(20)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().receiver_enqueued, 5);
        let reopened = dataplane.open_subscriber("b").unwrap();
        dataplane.publish_message("a", &reading_message(), Timestamp(21)).unwrap();
        dataplane.drain();
        assert_eq!(reopened.len(), 1);

        // Shutdown closes mailboxes: the backlog is received, then Disconnected.
        let report = dataplane.shutdown();
        assert!(reopened.recv().is_ok());
        assert_eq!(reopened.recv().unwrap_err(), RecvError::Disconnected);
        assert!(report.shard_audit.iter().all(|log| log.verify_chain().is_intact()));
    }

    /// Drop-oldest overflow sheds the oldest deliveries, counts them, and leaves
    /// `DeliveryDropped` evidence whose totals account for every shed message —
    /// exactly once per shed in *both* audit modes (full mode records per-drop,
    /// summarised mode folds per-pair totals; never both).
    #[test]
    fn drop_oldest_overflow_is_counted_and_evidenced() {
        for audit_detail in [AuditDetail::Summarised, AuditDetail::Full] {
            drop_oldest_evidence_totals_exactly_once(audit_detail);
        }
    }

    fn drop_oldest_evidence_totals_exactly_once(audit_detail: AuditDetail) {
        use legaliot_audit::AuditEvent;

        let config = DataplaneConfig {
            mailbox_capacity: 2,
            overflow: OverflowPolicy::DropOldest,
            audit_detail,
            ..DataplaneConfig::default()
        };
        let dataplane = two_pair_plane(config);
        dataplane.register_schema(reading_schema()).unwrap();
        let receiver = dataplane.open_subscriber("b").unwrap();
        for t in 10..15 {
            dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.receiver_enqueued, 5);
        assert_eq!(stats.receiver_dropped, 3);
        assert_eq!(receiver.dropped(), 3);
        // The two newest deliveries survive.
        let received = receiver.drain();
        assert_eq!(received.len(), 2);
        assert_eq!(
            received.iter().map(ReceivedMessage::sent_at_millis).collect::<Vec<_>>(),
            vec![13, 14]
        );
        // Audit evidence totals every shed delivery exactly once, whichever mode.
        let report = dataplane.shutdown();
        let dropped_total: u64 = report
            .merged_timeline()
            .into_iter()
            .filter_map(|r| match r.event {
                AuditEvent::DeliveryDropped { dropped, ref source, ref destination, .. } => {
                    assert_eq!((source.as_str(), destination.as_str()), ("a", "b"));
                    Some(dropped)
                }
                _ => None,
            })
            .sum();
        assert_eq!(dropped_total, 3, "{audit_detail:?}");
    }

    /// Block overflow never sheds: a full mailbox parks the shard, which
    /// backpressures publishers end-to-end, and a concurrent consumer releases it.
    #[test]
    fn block_overflow_backpressures_until_the_consumer_drains() {
        let config = DataplaneConfig {
            mailbox_capacity: 2,
            overflow: OverflowPolicy::Block,
            shards: 2,
            ..DataplaneConfig::default()
        };
        let dataplane = two_pair_plane(config);
        dataplane.register_schema(reading_schema()).unwrap();
        let receiver = dataplane.open_subscriber("b").unwrap();
        let consumer = std::thread::spawn(move || {
            let mut received = Vec::new();
            while let Ok(message) = receiver.recv() {
                received.push(message.sent_at_millis());
            }
            received
        });
        for t in 10..30 {
            dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.receiver_enqueued, 20);
        assert_eq!(stats.receiver_dropped, 0);
        // Shutdown closes the mailbox; the consumer exits after draining everything.
        dataplane.shutdown();
        let received = consumer.join().unwrap();
        assert_eq!(received, (10..30).collect::<Vec<u64>>());
    }

    #[test]
    fn stats_default_and_shard_routing_are_stable() {
        let dataplane = Dataplane::new("routing", DataplaneConfig::default());
        assert_eq!(dataplane.stats(), DataplaneStats::default());
        assert_eq!(dataplane.shard_of("sensor-1"), dataplane.shard_of("sensor-1"));
        assert!(dataplane.shard_of("sensor-1") < dataplane.config().shards);
    }

    /// Flow-only publishes carry no message body, so the per-message-type
    /// AdmissionCache is never consulted: a cached config must report zero hits
    /// AND zero misses, which is why the bench emits `ac_cache_hit_ratio: null`
    /// for flow-mode rows instead of a misleading 0.0.
    #[test]
    fn flow_only_publish_never_touches_the_admission_cache() {
        let config = DataplaneConfig { cache_ac_decisions: true, ..DataplaneConfig::default() };
        let dataplane = two_pair_plane(config);
        for t in 10..30 {
            assert_eq!(dataplane.publish("a", Timestamp(t)).unwrap(), 1);
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 20);
        assert_eq!(
            (stats.ac_cache_hits, stats.ac_cache_misses),
            (0, 0),
            "flow path must not consult the AdmissionCache"
        );
    }

    /// Tentpole acceptance: a seeded failpoint panics the shard mid-delivery.
    /// The supervisor restarts it, the interrupted delivery is evidenced as
    /// lost (never silently dropped), the audit chain stays intact across the
    /// re-anchor, and the accounting identity holds exactly after drain.
    #[test]
    fn shard_panic_restarts_worker_and_accounts_exactly() {
        use legaliot_audit::{AuditEvent, AuditEventKind};
        use std::time::Duration;

        let registry = Arc::new(FailpointRegistry::new(42).with_spec(
            FailpointSpec::on_hits(FailpointSite::ShardProcess, FaultKind::Panic, 3, 0).limit(1),
        ));
        let config = DataplaneConfig {
            shards: 1,
            restart_backoff: Duration::from_micros(100),
            failpoints: Some(Arc::clone(&registry)),
            ..DataplaneConfig::default()
        };
        let dataplane = two_pair_plane(config);
        for t in 10..20 {
            dataplane.publish("a", Timestamp(t)).unwrap();
        }
        dataplane.drain();
        assert_eq!(registry.fired(FailpointSite::ShardProcess), 1);
        let stats = dataplane.stats();
        assert_eq!(stats.shard_restarts, 1);
        assert_eq!(stats.deliveries_lost, 1);
        assert_eq!(stats.degraded_shards, 0);
        assert_eq!(stats.delivered, 9);
        assert_eq!(
            stats.published,
            stats.delivered + stats.denied + stats.missing_endpoint + stats.deliveries_lost,
            "accounting identity must hold exactly after drain"
        );
        // The restart and loss counters reach the exposition surface.
        let exposition = dataplane.telemetry().exposition();
        assert_eq!(exposition.counter("shard_restarts"), Some(1));
        assert_eq!(exposition.counter("deliveries_lost"), Some(1));
        assert_eq!(exposition.gauge("degraded_shards"), Some(0));

        let report = dataplane.shutdown();
        assert!(report.worker_panics.is_empty(), "the panic was supervised, not escaped");
        let log = &report.shard_audit[0];
        assert!(log.verify_chain().is_intact(), "chain must re-anchor across the restart");
        assert_eq!(log.of_kind(AuditEventKind::ShardRestarted).count(), 1);
        let lost_total: u64 = report
            .merged_timeline()
            .into_iter()
            .filter_map(|r| match r.event {
                AuditEvent::DeliveryLost {
                    lost, ref source, ref destination, ref cause, ..
                } => {
                    assert_eq!((source.as_str(), destination.as_str()), ("a", "b"));
                    assert!(cause.contains("failpoint"), "cause carries the panic payload");
                    Some(lost)
                }
                _ => None,
            })
            .sum();
        assert_eq!(lost_total, 1, "exactly the crashed delivery is evidenced lost");
    }

    /// A panic during the mailbox hand-off is the at-most-once edge: the
    /// delivery was already enforced and counted, so the abandoned push is
    /// evidenced as lost without re-counting it anywhere.
    #[test]
    fn hand_off_panic_is_evidenced_without_double_counting() {
        use legaliot_audit::AuditEvent;
        use std::time::Duration;

        let registry = Arc::new(FailpointRegistry::new(1).with_spec(
            FailpointSpec::on_hits(FailpointSite::MailboxHandOff, FaultKind::Panic, 2, 0).limit(1),
        ));
        let config = DataplaneConfig {
            shards: 1,
            restart_backoff: Duration::from_micros(100),
            failpoints: Some(Arc::clone(&registry)),
            ..DataplaneConfig::default()
        };
        let dataplane = two_pair_plane(config);
        dataplane.register_schema(reading_schema()).unwrap();
        let receiver = dataplane.open_subscriber("b").unwrap();
        for t in 10..15 {
            dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.shard_restarts, 1);
        assert_eq!(stats.delivered, 5, "enforcement completed before the hand-off crashed");
        assert_eq!(stats.deliveries_lost, 0, "hand-off losses are evidence, not a re-count");
        assert_eq!(receiver.drain().len(), 4, "the abandoned hand-off never arrived");

        let report = dataplane.shutdown();
        let hand_off_losses: Vec<_> = report
            .merged_timeline()
            .into_iter()
            .filter_map(|r| match r.event {
                AuditEvent::DeliveryLost { lost, ref message_type, ref cause, .. } => {
                    assert!(cause.contains("mailbox hand-off abandoned"));
                    assert_eq!(message_type.as_deref(), Some("reading"));
                    Some(lost)
                }
                _ => None,
            })
            .collect();
        assert_eq!(hand_off_losses, vec![1]);
        assert!(report.shard_audit[0].verify_chain().is_intact());
    }

    /// Once a shard exhausts its restart budget it degrades instead of crash
    /// looping: publishes routed to it fail fast with `ShardUnavailable`
    /// (no hang), the degradation is visible in stats/telemetry, and shutdown
    /// still completes with an intact, restart-evidenced chain.
    #[test]
    fn restart_budget_exhaustion_degrades_the_shard() {
        use legaliot_audit::AuditEventKind;
        use std::time::Duration;

        let registry = Arc::new(FailpointRegistry::new(7).with_spec(FailpointSpec::on_hits(
            FailpointSite::ShardLoop,
            FaultKind::Panic,
            0,
            1,
        )));
        let config = DataplaneConfig {
            shards: 1,
            restart_budget: 2,
            restart_backoff: Duration::from_micros(50),
            failpoints: Some(registry),
            ..DataplaneConfig::default()
        };
        let dataplane = two_pair_plane(config);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while dataplane.stats().degraded_shards == 0 {
            assert!(std::time::Instant::now() < deadline, "shard never degraded");
            std::thread::yield_now();
        }
        let stats = dataplane.stats();
        assert_eq!(stats.shard_restarts, 2, "every budgeted restart was attempted first");
        assert_eq!(stats.degraded_shards, 1);
        assert_eq!(
            dataplane.publish("a", Timestamp(10)),
            Err(DataplaneError::ShardUnavailable { shard: 0 })
        );
        // A rejected publish enqueues (and counts) nothing, so the accounting
        // identity is untouched and drain has nothing to wait for.
        dataplane.drain();
        assert_eq!(dataplane.telemetry().exposition().gauge("degraded_shards"), Some(1));
        let report = dataplane.shutdown();
        assert!(report.worker_panics.is_empty());
        let log = &report.shard_audit[0];
        assert_eq!(log.of_kind(AuditEventKind::ShardRestarted).count(), 2);
        assert!(log.verify_chain().is_intact());
    }

    /// Shutdown (and Drop) must reap a worker whose panic escaped supervision
    /// without re-panicking: the payload is captured in the report instead.
    /// The rendering helper is the piece unit-testable in isolation.
    #[test]
    fn panic_payloads_render_for_reports() {
        let payload: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(crate::shard::panic_message(payload.as_ref()), "boom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(crate::shard::panic_message(payload.as_ref()), "kaboom");
        let payload: Box<dyn std::any::Any + Send> = Box::new(77u32);
        assert_eq!(crate::shard::panic_message(payload.as_ref()), "<non-string panic payload>");
    }

    /// Enabled telemetry attributes every allowed delivery across the pipeline
    /// stages; disabled telemetry leaves histograms empty while the enforcement
    /// counters stay exact.
    #[test]
    fn telemetry_snapshot_reflects_enabled_and_disabled_modes() {
        use legaliot_obs::ObsConfig;
        use telemetry::Stage;

        for enabled in [true, false] {
            let config = DataplaneConfig {
                telemetry: if enabled { ObsConfig::enabled() } else { ObsConfig::disabled() },
                ..DataplaneConfig::default()
            };
            let dataplane = two_pair_plane(config);
            dataplane.register_schema(reading_schema()).unwrap();
            for t in 10..18 {
                dataplane.publish_message("a", &reading_message(), Timestamp(t)).unwrap();
            }
            dataplane.drain();

            let snapshot = dataplane.telemetry();
            assert_eq!(snapshot.dataplane, "test");
            assert_eq!(snapshot.enabled, enabled);
            assert_eq!(snapshot.stats.delivered, 8);
            assert_eq!(snapshot.shards.len(), dataplane.config().shards);

            let merged = snapshot.merged();
            if enabled {
                // Every allowed delivery passes isolation, AC, IFC, quench, and
                // lands one end-to-end Delivery sample with a real latency.
                assert_eq!(merged.stage(Stage::Delivery).count(), 8);
                assert_eq!(merged.stage(Stage::Isolation).count(), 8);
                assert_eq!(merged.stage(Stage::Ifc).count(), 8);
                assert_eq!(merged.stage(Stage::Quench).count(), 8);
                assert_eq!(
                    merged.stage(Stage::AcHit).count() + merged.stage(Stage::AcMiss).count(),
                    8
                );
                assert!(merged.stage(Stage::Delivery).p99() > 0);
                let exposition = snapshot.exposition();
                assert_eq!(exposition.counter("delivered"), Some(8));
                let delivery = exposition.histogram("stage.delivery").unwrap();
                assert_eq!(delivery.count(), 8);
            } else {
                for stage in Stage::ALL {
                    assert!(
                        merged.stage(stage).is_empty(),
                        "disabled telemetry recorded {}",
                        stage.name()
                    );
                }
                assert_eq!(snapshot.exposition().counter("delivered"), Some(8));
            }
        }
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("legaliot-dp-durable-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path) -> DataplaneConfig {
        DataplaneConfig {
            audit_detail: AuditDetail::Full,
            audit_batch: 4,
            audit_retention: Some(8),
            persistence: Some(PersistenceConfig::at(dir)),
            ..DataplaneConfig::default()
        }
    }

    /// Durable audit end to end: retention prune-outs stream to per-shard
    /// segments, shutdown seals everything fsynced, the on-disk stream is each
    /// shard's complete dense history, and a second incarnation on the same
    /// directories extends the very same verifiable chain.
    #[test]
    fn durable_audit_persists_prunes_and_survives_restart() {
        let dir = durable_dir("roundtrip");
        let config = durable_config(&dir);
        let persistence = config.persistence.clone().unwrap();

        let dataplane = two_pair_plane(config.clone());
        for round in 0..100 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
            dataplane.publish("c", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let live = dataplane.stats();
        assert!(live.segment_records_persisted > 0, "retention streamed to disk: {live:?}");
        assert!(live.segment_bytes_fsynced > 0, "flushes fsynced: {live:?}");
        assert_eq!(live.segment_records_dropped, 0, "{live:?}");
        assert_eq!(live.recovery_truncations, 0, "{live:?}");

        let report = dataplane.shutdown();
        assert!(report.segments_sealed >= 1, "shutdown sealed open segments");
        assert_eq!(report.unsynced_bytes, 0, "clean shutdown leaves nothing unsynced");
        let segment_stats = report.segment_stats.as_ref().expect("persistence was on");
        assert_eq!(segment_stats.records_dropped, 0);
        assert!(segment_stats.fsync.count() > 0, "fsync latency histogram populated");

        // Disk holds each shard's complete stream: clean recovery, dense ids,
        // intact chain, and the totals equal the persisted counter.
        let mut disk_records = 0u64;
        for shard in 0..report.shard_audit.len() {
            let recovered =
                legaliot_audit::SegmentStore::recover(persistence.shard_dir(shard)).unwrap();
            assert!(recovered.is_clean(), "truncations: {:?}", recovered.truncations);
            assert!(recovered.chain.is_intact());
            for (i, record) in recovered.records.iter().enumerate() {
                assert_eq!(record.id.0, i as u64, "ids are dense from 0");
            }
            disk_records += recovered.records.len() as u64;
        }
        assert_eq!(disk_records, report.stats.segment_records_persisted);

        // Second incarnation on the same directories: each shard re-anchors on
        // its persisted head, and the combined disk stream still verifies as one
        // chain across both incarnations.
        let dataplane = two_pair_plane(config);
        assert_eq!(dataplane.stats().recovery_truncations, 0);
        for round in 0..20 {
            dataplane.publish("a", Timestamp(500 + round)).unwrap();
        }
        dataplane.drain();
        let report = dataplane.shutdown();
        assert_eq!(report.unsynced_bytes, 0);
        let mut grown = 0u64;
        for shard in 0..report.shard_audit.len() {
            let recovered =
                legaliot_audit::SegmentStore::recover(persistence.shard_dir(shard)).unwrap();
            assert!(recovered.is_clean(), "truncations: {:?}", recovered.truncations);
            assert!(recovered.chain.is_intact(), "cross-incarnation chain verifies");
            grown += recovered.records.len() as u64;
        }
        assert!(grown > disk_records, "the second incarnation extended the chain");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Startup recovery semantics: a torn tail (crash mid-frame) is truncated,
    /// surfaced in `stats().recovery_truncations`, and the next incarnation
    /// re-anchors on the last *persisted* record so the chain still verifies.
    #[test]
    fn startup_recovery_truncates_torn_tails_and_reanchors() {
        let dir = durable_dir("torn");
        let config = durable_config(&dir);
        let persistence = config.persistence.clone().unwrap();

        let dataplane = two_pair_plane(config.clone());
        for round in 0..100 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
            dataplane.publish("c", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        drop(dataplane);

        // Tear the tail of every shard directory that has segments: cut the
        // highest-sequence file a few bytes short, mid-frame.
        let shards = config.shards;
        let mut torn = 0u64;
        for shard in 0..shards {
            let shard_dir = persistence.shard_dir(shard);
            let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&shard_dir)
                .map(|entries| entries.map(|e| e.unwrap().path()).collect())
                .unwrap_or_default();
            files.sort();
            if let Some(last) = files.pop() {
                let len = std::fs::metadata(&last).unwrap().len();
                assert!(len > 27, "a sealed segment holds at least one frame");
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&last)
                    .unwrap()
                    .set_len(len - 3)
                    .unwrap();
                torn += 1;
            }
        }
        assert!(torn >= 1, "the workload persisted segments to tear");

        // The next incarnation surfaces exactly the torn tails it repaired and
        // still verifies one chain across the truncation point.
        let dataplane = two_pair_plane(config);
        assert_eq!(dataplane.stats().recovery_truncations, torn);
        for round in 0..20 {
            dataplane.publish("a", Timestamp(500 + round)).unwrap();
        }
        dataplane.drain();
        let report = dataplane.shutdown();
        assert_eq!(report.stats.recovery_truncations, torn);
        assert_eq!(report.unsynced_bytes, 0);
        for shard in 0..report.shard_audit.len() {
            let recovered =
                legaliot_audit::SegmentStore::recover(persistence.shard_dir(shard)).unwrap();
            assert!(
                recovered.is_clean(),
                "recovery repaired the tear: {:?}",
                recovered.truncations
            );
            assert!(recovered.chain.is_intact(), "chain re-anchored across the truncation");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
