//! # legaliot-dataplane
//!
//! A sharded, decision-cached publish/subscribe enforcement engine on top of the
//! `legaliot` middleware stack — the paper's §8.2.2 enforcement model (admission checks
//! at channel establishment, IFC on every message, re-evaluation when a security
//! context changes) scaled from a synchronous single-threaded bus to a multi-threaded
//! dataplane.
//!
//! Architecture (see the README's "Dataplane & scaling" section for the full picture):
//!
//! * **Sharding** — components hash onto `N` worker shards by name; each shard runs its
//!   own thread and enforces the traffic of the subscribers it owns. Ingress queues are
//!   bounded ([`queue::BoundedQueue`]): full queues backpressure publishers
//!   ([`Dataplane::publish`] blocks, [`Dataplane::try_publish`] reports
//!   [`DataplaneError::QueueFull`]).
//! * **Decision caching** — each shard holds a private [`legaliot_ifc::DecisionCache`]
//!   keyed by the stable 64-bit hashes of the (source, destination) security contexts.
//!   Lookups always key on the entities' *current* hashes, and a context change
//!   broadcasts invalidation of the superseded hash to every shard, so the paper's
//!   re-evaluation-on-context-change semantics hold while redundant lattice walks are
//!   skipped on the hot path.
//! * **Batched, tamper-evident audit** — every shard writes its own hash-chained log
//!   through a [`legaliot_audit::BatchedAppender`]; in
//!   [`AuditDetail::Summarised`] mode repeated checks of a pair fold into one
//!   `FlowSummary` record (whose counts total every check in the window) while IFC
//!   denials and first-of-pair checks stay individually recorded.
//! * **Admission reuse** — subscriptions run the exact bus admission sequence via
//!   [`legaliot_middleware::admission::admit_channel`] (isolation → access control →
//!   IFC), audited on a control-plane log.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod topologies;

mod shard;

pub use engine::{
    AuditDetail, Dataplane, DataplaneConfig, DataplaneError, DataplaneReport, DataplaneStats,
};
pub use topologies::{smart_city, smart_home, Topology};

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_context::{ContextSnapshot, Timestamp};
    use legaliot_ifc::SecurityContext;
    use legaliot_middleware::{Component, DeliveryOutcome, Principal};

    fn snap() -> ContextSnapshot {
        ContextSnapshot::default()
    }

    fn endpoint(name: &str, secrecy: &[&str]) -> Component {
        Component::builder(name, Principal::new("owner"))
            .context(SecurityContext::from_names(secrecy.iter().copied(), Vec::<&str>::new()))
            .build()
    }

    /// A 2-shard dataplane with four endpoints and two legal channels a→b, c→d, where
    /// every endpoint has a distinct security context.
    fn two_pair_plane(config: DataplaneConfig) -> Dataplane {
        let dataplane = Dataplane::new("test", config);
        for (name, secrecy) in [
            ("a", vec!["t"]),
            ("b", vec!["t", "b-only"]),
            ("c", vec!["u"]),
            ("d", vec!["u", "d-only"]),
        ] {
            let secrecy: Vec<&str> = secrecy;
            dataplane.register(endpoint(name, &secrecy)).unwrap();
            dataplane.allow_sends_to(name);
        }
        assert!(dataplane.subscribe("a", "b", &snap(), Timestamp(1)).unwrap().is_delivered());
        assert!(dataplane.subscribe("c", "d", &snap(), Timestamp(1)).unwrap().is_delivered());
        dataplane
    }

    #[test]
    fn publish_enforces_and_counts() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        for round in 0..10 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
            dataplane.publish("c", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.published, 20);
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.denied, 0);
        // Two unique pairs: two misses, the rest hits.
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_hits, 18);
        assert!(stats.cache_hit_ratio() > 0.85);
    }

    /// Acceptance criterion: a context change invalidates cached decisions for exactly
    /// the affected entity — its next message is a cache miss (fresh lattice walk),
    /// while unrelated pairs keep hitting their cached decisions.
    #[test]
    fn context_change_invalidates_exactly_the_affected_entity() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        // Warm the cache for both pairs.
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.publish("c", Timestamp(10)).unwrap();
        dataplane.publish("a", Timestamp(11)).unwrap();
        dataplane.publish("c", Timestamp(11)).unwrap();
        dataplane.drain();
        let warm = dataplane.stats();
        assert_eq!((warm.cache_misses, warm.cache_hits), (2, 2));

        // `a` changes context (still flow-legal into b): its cached decision must die.
        dataplane
            .set_context(
                "a",
                SecurityContext::from_names(["t", "b-only"], Vec::<&str>::new()),
                Timestamp(12),
            )
            .unwrap();
        dataplane.drain();
        dataplane.publish("a", Timestamp(13)).unwrap();
        dataplane.publish("c", Timestamp(13)).unwrap();
        dataplane.drain();
        let after = dataplane.stats();
        // Exactly one new miss (a→b recomputed) and one new hit (c→d untouched).
        assert_eq!(after.cache_misses, warm.cache_misses + 1);
        assert_eq!(after.cache_hits, warm.cache_hits + 1);
        assert_eq!(after.delivered, 6);

        // The per-shard caches saw an invalidation for `a`'s old context.
        let report = dataplane.shutdown();
        let invalidated: u64 = report.cache_stats.iter().map(|s| s.invalidated).sum();
        assert_eq!(invalidated, 1);
    }

    /// §8.2.2 re-evaluation semantics: after a context change makes an established
    /// channel illegal, the very next message on it is denied (and audited), without
    /// any re-subscription step.
    #[test]
    fn context_change_reevaluates_established_channels() {
        let config =
            DataplaneConfig { audit_detail: AuditDetail::Summarised, ..DataplaneConfig::default() };
        let dataplane = two_pair_plane(config);
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().delivered, 1);

        // `a` gains a secrecy tag `b` does not hold: a→b becomes illegal.
        dataplane
            .set_context(
                "a",
                SecurityContext::from_names(["t", "quarantine"], Vec::<&str>::new()),
                Timestamp(11),
            )
            .unwrap();
        dataplane.publish("a", Timestamp(12)).unwrap();
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.denied, 1);

        // The denial is individually evidenced even in summarised mode, and every
        // shard chain verifies.
        let report = dataplane.shutdown();
        let denied_records: usize =
            report.shard_audit.iter().map(|log| log.denied_flows().count()).sum();
        assert_eq!(denied_records, 1);
        for log in &report.shard_audit {
            assert!(log.verify_chain().is_intact());
        }
        assert!(report.control_audit.verify_chain().is_intact());
        // The control log evidences the subscriptions and the label change.
        use legaliot_audit::AuditEventKind;
        assert_eq!(report.control_audit.of_kind(AuditEventKind::ChannelChanged).count(), 2);
        assert_eq!(report.control_audit.of_kind(AuditEventKind::LabelChanged).count(), 1);
    }

    #[test]
    fn subscription_admission_refuses_illegal_edges() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        // b→a is an illegal flow (a lacks `b-only`): admission refuses, no subscription.
        let outcome = dataplane.subscribe("b", "a", &snap(), Timestamp(2)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::DeniedByIfc(_)));
        assert_eq!(dataplane.publish("b", Timestamp(3)).unwrap(), 0);
        // An endpoint with no AC rule is default-deny.
        dataplane.register(endpoint("locked", &["t"])).unwrap();
        let outcome = dataplane.subscribe("a", "locked", &snap(), Timestamp(4)).unwrap();
        assert!(matches!(outcome, DeliveryOutcome::DeniedByAccessControl { .. }));
        // Unknown endpoints are errors, not outcomes.
        assert_eq!(
            dataplane.subscribe("ghost", "a", &snap(), Timestamp(5)),
            Err(DataplaneError::UnknownEndpoint { name: "ghost".into() })
        );
        assert_eq!(
            dataplane.publish("ghost", Timestamp(6)),
            Err(DataplaneError::UnknownEndpoint { name: "ghost".into() })
        );
    }

    #[test]
    fn isolation_denies_in_flight_traffic() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        dataplane.set_isolated("b", true, Timestamp(9)).unwrap();
        dataplane.publish("a", Timestamp(10)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().denied, 1);
        dataplane.set_isolated("b", false, Timestamp(11)).unwrap();
        dataplane.publish("a", Timestamp(12)).unwrap();
        dataplane.drain();
        assert_eq!(dataplane.stats().delivered, 1);

        // The isolation change is control-plane evidence, and the denied delivery is
        // totalled in the pair summary.
        let report = dataplane.shutdown();
        use legaliot_audit::{AuditEvent, AuditEventKind};
        assert_eq!(report.control_audit.of_kind(AuditEventKind::Reconfigured).count(), 2);
        let summary = report
            .merged_timeline()
            .into_iter()
            .find_map(|r| match r.event {
                AuditEvent::FlowSummary { ref source, allowed, denied, .. } if source == "a" => {
                    Some((allowed, denied))
                }
                _ => None,
            })
            .expect("pair summary present");
        assert_eq!(summary, (1, 1));
    }

    #[test]
    fn try_publish_reports_backpressure() {
        let config = DataplaneConfig { shards: 1, queue_capacity: 2, ..Default::default() };
        let dataplane = two_pair_plane(config);
        // Park the single worker so the queue cannot drain.
        let barrier = dataplane.block_shard(0);
        let mut full = false;
        for round in 0..4 {
            match dataplane.try_publish("a", Timestamp(10 + round)) {
                Ok(_) => {}
                Err(DataplaneError::QueueFull { shard: 0, capacity: 2 }) => {
                    full = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(full, "bounded queue must report backpressure");
        barrier.wait();
        dataplane.drain();
        // Everything that was enqueued still got enforced.
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, stats.published);
    }

    #[test]
    fn unsubscribe_and_deregister_stop_fanout() {
        let dataplane = two_pair_plane(DataplaneConfig::default());
        dataplane.unsubscribe("a", "b").unwrap();
        assert_eq!(dataplane.publish("a", Timestamp(10)).unwrap(), 0);
        dataplane.deregister("d").unwrap();
        assert_eq!(dataplane.publish("c", Timestamp(11)).unwrap(), 0);
        assert_eq!(
            dataplane.deregister("d"),
            Err(DataplaneError::UnknownEndpoint { name: "d".into() })
        );
        assert_eq!(
            dataplane.register(endpoint("a", &["t"])),
            Err(DataplaneError::DuplicateEndpoint { name: "a".into() })
        );
    }

    #[test]
    fn full_audit_records_every_message() {
        let config = DataplaneConfig {
            audit_detail: AuditDetail::Full,
            cache_decisions: false,
            shards: 2,
            ..Default::default()
        };
        let dataplane = two_pair_plane(config);
        for round in 0..5 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let report = dataplane.shutdown();
        use legaliot_audit::AuditEventKind;
        let flow_records: usize = report
            .shard_audit
            .iter()
            .map(|log| log.of_kind(AuditEventKind::FlowChecked).count())
            .sum();
        assert_eq!(flow_records, 5);
        for log in &report.shard_audit {
            assert!(log.verify_chain().is_intact());
        }
    }

    #[test]
    fn summarised_audit_folds_repeats_into_flow_summary() {
        let config =
            DataplaneConfig { audit_detail: AuditDetail::Summarised, ..Default::default() };
        let dataplane = two_pair_plane(config);
        for round in 0..50 {
            dataplane.publish("a", Timestamp(10 + round)).unwrap();
        }
        dataplane.drain();
        let report = dataplane.shutdown();
        use legaliot_audit::{AuditEvent, AuditEventKind};
        let all: Vec<_> = report.merged_timeline();
        let full_records =
            all.iter().filter(|r| r.event.kind() == AuditEventKind::FlowChecked).count();
        let summaries: Vec<_> =
            all.iter().filter(|r| r.event.kind() == AuditEventKind::FlowSummary).cloned().collect();
        // One full record (first check) + one summary covering all 50.
        assert_eq!(full_records, 1);
        assert_eq!(summaries.len(), 1);
        match &summaries[0].event {
            AuditEvent::FlowSummary { allowed, denied, source, destination, .. } => {
                assert_eq!((source.as_str(), destination.as_str()), ("a", "b"));
                assert_eq!(*allowed, 50);
                assert_eq!(*denied, 0);
            }
            other => panic!("expected FlowSummary, got {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        assert!(DataplaneError::UnknownEndpoint { name: "x".into() }.to_string().contains("x"));
        assert!(DataplaneError::QueueFull { shard: 3, capacity: 8 }
            .to_string()
            .contains("shard 3"));
        assert!(DataplaneError::DuplicateEndpoint { name: "x".into() }
            .to_string()
            .contains("already"));
    }

    #[test]
    fn stats_default_and_shard_routing_are_stable() {
        let dataplane = Dataplane::new("routing", DataplaneConfig::default());
        assert_eq!(dataplane.stats(), DataplaneStats::default());
        assert_eq!(dataplane.shard_of("sensor-1"), dataplane.shard_of("sensor-1"));
        assert!(dataplane.shard_of("sensor-1") < dataplane.config().shards);
    }
}
