//! Adapters from the `legaliot-iot` scenario workloads to dataplane deployments.
//!
//! The benchmarks and examples drive the dataplane with the same smart-home (Fig. 7)
//! and smart-city topologies the `legaliot-core` scenarios wire on the synchronous bus,
//! so throughput numbers are measured against paper-faithful component graphs rather
//! than synthetic stars.

use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_ifc::{Label, SecurityContext};
use legaliot_iot::{CityWorkload, HomeMonitoringWorkload, Thing};
use legaliot_middleware::{
    AttributeKind, AttributeValue, Component, Message, MessageSchema, MessageType,
};

use crate::engine::{Dataplane, DataplaneError};

/// The demo payload schema the topologies register for every message type their
/// components produce: a float reading, a text unit, and a `subject-id` attribute
/// carrying the message-level `identity` tag (Fig. 10's tag `C`). No scenario
/// subscriber holds `identity`, so every payload delivery exercises per-attribute
/// source quenching.
pub fn payload_schema(message_type: &MessageType) -> MessageSchema {
    MessageSchema::new(message_type.as_str())
        .attribute("value", AttributeKind::Float)
        .attribute("unit", AttributeKind::Text)
        .sensitive_attribute("subject-id", AttributeKind::Text, Label::from_names(["identity"]))
}

/// A message conforming to [`payload_schema`] for the given type.
pub fn sample_message(message_type: &MessageType) -> Message {
    Message::new(message_type.as_str(), SecurityContext::public())
        .with("value", AttributeValue::Float(98.6))
        .with("unit", AttributeValue::Text("bpm".into()))
        .with("subject-id", AttributeValue::Text("subject-0017".into()))
}

/// A component graph: the things to register and the pub/sub edges to establish.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable name (used for audit authorities and reports).
    pub name: String,
    /// Components to register, in deterministic order.
    pub components: Vec<Component>,
    /// `(publisher, subscriber)` edges to admission-check and subscribe.
    pub edges: Vec<(String, String)>,
}

/// Builds a [`Topology`] incrementally — the one conversion + wiring path shared
/// by the hand-built adapters below and the `legaliot-fleet` generator, so
/// hand-built and generated deployments register identically.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    components: Vec<Component>,
    edges: Vec<(String, String)>,
}

impl TopologyBuilder {
    /// Starts an empty topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TopologyBuilder { name: name.into(), components: Vec::new(), edges: Vec::new() }
    }

    /// Adds a thing, converted via [`Thing::to_component`] (owner principal carries
    /// the thing-kind role, context/node/produces/consumes preserved).
    pub fn thing(mut self, thing: &Thing) -> Self {
        self.components.push(thing.to_component());
        self
    }

    /// Adds every thing of an iterator, in order.
    pub fn things<'a>(mut self, things: impl IntoIterator<Item = &'a Thing>) -> Self {
        for thing in things {
            self.components.push(thing.to_component());
        }
        self
    }

    /// Adds an already-built component.
    pub fn component(mut self, component: Component) -> Self {
        self.components.push(component);
        self
    }

    /// Adds a `publisher → subscriber` edge.
    pub fn edge(mut self, publisher: impl Into<String>, subscriber: impl Into<String>) -> Self {
        self.edges.push((publisher.into(), subscriber.into()));
        self
    }

    /// Finishes the topology.
    pub fn build(self) -> Topology {
        Topology { name: self.name, components: self.components, edges: self.edges }
    }
}

impl Topology {
    /// The names of components that publish (appear as an edge source) — the driver
    /// loop publishes from these.
    pub fn publishers(&self) -> Vec<String> {
        let mut names: Vec<String> = self.edges.iter().map(|(from, _)| from.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Registers every component (with open `Send` access, as the scenarios configure)
    /// and subscribes every edge. Returns how many edges were admitted.
    ///
    /// # Errors
    ///
    /// Propagates registration/subscription errors (duplicate or unknown endpoints).
    pub fn install(
        &self,
        dataplane: &Dataplane,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<usize, DataplaneError> {
        self.register(dataplane)?;
        for component in &self.components {
            dataplane.allow_sends_to(component.name());
        }
        self.subscribe_edges(dataplane, snapshot, now)
    }

    /// Registers every component as an endpoint via [`Dataplane::register_bulk`]
    /// (one directory lock for the whole batch), without touching access rules or
    /// subscriptions — generated fleets install their own per-component policies
    /// before wiring edges.
    ///
    /// # Errors
    ///
    /// Propagates duplicate-endpoint errors; nothing is registered on `Err`.
    pub fn register(&self, dataplane: &Dataplane) -> Result<(), DataplaneError> {
        dataplane.register_bulk(self.components.iter().cloned())?;
        Ok(())
    }

    /// Admission-checks and subscribes every edge, in order. Returns how many edges
    /// were admitted (an edge refused by access control or IFC is an outcome, not an
    /// error).
    ///
    /// # Errors
    ///
    /// Propagates unknown-endpoint subscription errors.
    pub fn subscribe_edges(
        &self,
        dataplane: &Dataplane,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<usize, DataplaneError> {
        let mut admitted = 0;
        for (publisher, subscriber) in &self.edges {
            if dataplane.subscribe(publisher, subscriber, snapshot, now)?.is_delivered() {
                admitted += 1;
            }
        }
        Ok(admitted)
    }

    /// Every message type produced by a component of this topology, deduplicated.
    pub fn message_types(&self) -> Vec<MessageType> {
        let mut types: Vec<MessageType> =
            self.components.iter().flat_map(|c| c.produces().iter().cloned()).collect();
        types.sort();
        types.dedup();
        types
    }

    /// [`Topology::install`] plus [`payload_schema`] registration for every produced
    /// message type, enabling [`Dataplane::publish_message`] on all publishers.
    ///
    /// # Errors
    ///
    /// Propagates installation and schema-registration errors.
    pub fn install_with_payload_schemas(
        &self,
        dataplane: &Dataplane,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<usize, DataplaneError> {
        let admitted = self.install(dataplane, snapshot, now)?;
        for message_type in self.message_types() {
            dataplane.register_schema(payload_schema(&message_type))?;
        }
        Ok(admitted)
    }

    /// `(publisher, sample message)` pairs for payload-driving loops: each publisher
    /// paired with a [`sample_message`] of the first type it produces.
    pub fn publisher_messages(&self) -> Vec<(String, Message)> {
        self.publishers()
            .into_iter()
            .filter_map(|name| {
                let component = self.components.iter().find(|c| c.name() == name)?;
                let message_type = component.produces().first()?;
                Some((name, sample_message(message_type)))
            })
            .collect()
    }
}

/// The smart-home monitoring topology (Fig. 7) for `patients` patients: hospital-device
/// sensors feed their analysers directly, third-party sensors go through the input
/// sanitiser, and every analyser feeds the statistics generator.
pub fn smart_home(patients: usize, seed: u64) -> Topology {
    let workload = HomeMonitoringWorkload::with_patients(patients.max(1), seed);
    let mut builder = TopologyBuilder::new("smart-home").things(workload.things().iter());
    for patient in &workload.patients {
        if patient.hospital_device {
            builder = builder
                .edge(format!("{}-sensor", patient.name), format!("{}-analyser", patient.name));
        } else {
            builder = builder.edge(format!("{}-sensor", patient.name), "input-sanitiser");
        }
        builder = builder.edge(format!("{}-analyser", patient.name), "stats-generator");
    }
    builder.build()
}

/// The smart-city topology: per-district sensors feed their district gateway, gateways
/// feed the council analytics service, analytics feeds the anonymiser.
pub fn smart_city(districts: usize, sensors_per_district: usize) -> Topology {
    let workload = CityWorkload::new(districts.max(1), sensors_per_district.max(1));
    let mut builder = TopologyBuilder::new("smart-city").things(workload.things().iter());
    for district in 0..workload.districts {
        for sensor in 0..workload.sensors_per_district {
            builder = builder.edge(
                format!("district{district}-sensor{sensor}"),
                format!("district{district}-gateway"),
            );
        }
        builder = builder.edge(format!("district{district}-gateway"), "council-analytics");
    }
    builder.edge("council-analytics", "city-anonymiser").build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DataplaneConfig;

    #[test]
    fn smart_home_topology_installs_fully() {
        let topology = smart_home(4, 7);
        let dataplane = Dataplane::new("smart-home-test", DataplaneConfig::default());
        let admitted = topology
            .install(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("install succeeds");
        // Every wired edge is IFC-legal in the scenario, so all must be admitted.
        assert_eq!(admitted, topology.edges.len());
        assert!(!topology.publishers().is_empty());
    }

    #[test]
    fn payload_schemas_install_and_sample_messages_conform() {
        let topology = smart_home(3, 7);
        let dataplane = Dataplane::new("smart-home-payload-test", DataplaneConfig::default());
        topology
            .install_with_payload_schemas(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("install succeeds");
        let pairs = topology.publisher_messages();
        assert_eq!(pairs.len(), topology.publishers().len());
        for (publisher, message) in &pairs {
            dataplane.publish_message(publisher, message, Timestamp(2)).expect("publishes");
        }
        dataplane.drain();
        let stats = dataplane.stats();
        assert_eq!(stats.delivered, stats.published);
        // `subject-id` carries the `identity` tag no subscriber holds: every delivery
        // quenches exactly one attribute.
        assert_eq!(stats.quenched_attributes, stats.delivered);
        assert!(stats.payload_bytes > 0);
    }

    #[test]
    fn smart_city_topology_installs_fully() {
        let topology = smart_city(3, 4);
        let dataplane = Dataplane::new("smart-city-test", DataplaneConfig::default());
        let admitted = topology
            .install(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("install succeeds");
        assert_eq!(admitted, topology.edges.len());
        // 3 districts × 4 sensors + 3 gateway→analytics + analytics→anonymiser.
        assert_eq!(topology.edges.len(), 3 * 4 + 3 + 1);
    }
}
