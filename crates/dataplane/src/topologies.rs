//! Adapters from the `legaliot-iot` scenario workloads to dataplane deployments.
//!
//! The benchmarks and examples drive the dataplane with the same smart-home (Fig. 7)
//! and smart-city topologies the `legaliot-core` scenarios wire on the synchronous bus,
//! so throughput numbers are measured against paper-faithful component graphs rather
//! than synthetic stars.

use legaliot_context::{ContextSnapshot, Timestamp};
use legaliot_iot::{CityWorkload, HomeMonitoringWorkload, Thing};
use legaliot_middleware::{Component, Principal};

use crate::engine::{Dataplane, DataplaneError};

/// A component graph: the things to register and the pub/sub edges to establish.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Human-readable name (used for audit authorities and reports).
    pub name: String,
    /// Components to register, in deterministic order.
    pub components: Vec<Component>,
    /// `(publisher, subscriber)` edges to admission-check and subscribe.
    pub edges: Vec<(String, String)>,
}

impl Topology {
    /// The names of components that publish (appear as an edge source) — the driver
    /// loop publishes from these.
    pub fn publishers(&self) -> Vec<String> {
        let mut names: Vec<String> = self.edges.iter().map(|(from, _)| from.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Registers every component (with open `Send` access, as the scenarios configure)
    /// and subscribes every edge. Returns how many edges were admitted.
    ///
    /// # Errors
    ///
    /// Propagates registration/subscription errors (duplicate or unknown endpoints).
    pub fn install(
        &self,
        dataplane: &Dataplane,
        snapshot: &ContextSnapshot,
        now: Timestamp,
    ) -> Result<usize, DataplaneError> {
        for component in &self.components {
            dataplane.register(component.clone())?;
            dataplane.allow_sends_to(component.name());
        }
        let mut admitted = 0;
        for (publisher, subscriber) in &self.edges {
            if dataplane.subscribe(publisher, subscriber, snapshot, now)?.is_delivered() {
                admitted += 1;
            }
        }
        Ok(admitted)
    }
}

fn component_from_thing(thing: &Thing) -> Component {
    let mut builder = Component::builder(thing.name.clone(), Principal::new(thing.owner.clone()))
        .context(thing.context.clone())
        .on_node(thing.node.clone());
    for message_type in &thing.produces {
        builder = builder.produces(message_type.as_str());
    }
    for message_type in &thing.consumes {
        builder = builder.consumes(message_type.as_str());
    }
    builder.build()
}

/// The smart-home monitoring topology (Fig. 7) for `patients` patients: hospital-device
/// sensors feed their analysers directly, third-party sensors go through the input
/// sanitiser, and every analyser feeds the statistics generator.
pub fn smart_home(patients: usize, seed: u64) -> Topology {
    let workload = HomeMonitoringWorkload::with_patients(patients.max(1), seed);
    let components: Vec<Component> = workload.things().iter().map(component_from_thing).collect();
    let mut edges = Vec::new();
    for patient in &workload.patients {
        if patient.hospital_device {
            edges.push((format!("{}-sensor", patient.name), format!("{}-analyser", patient.name)));
        } else {
            edges.push((format!("{}-sensor", patient.name), "input-sanitiser".to_string()));
        }
        edges.push((format!("{}-analyser", patient.name), "stats-generator".to_string()));
    }
    Topology { name: "smart-home".into(), components, edges }
}

/// The smart-city topology: per-district sensors feed their district gateway, gateways
/// feed the council analytics service, analytics feeds the anonymiser.
pub fn smart_city(districts: usize, sensors_per_district: usize) -> Topology {
    let workload = CityWorkload::new(districts.max(1), sensors_per_district.max(1));
    let components: Vec<Component> = workload.things().iter().map(component_from_thing).collect();
    let mut edges = Vec::new();
    for district in 0..workload.districts {
        for sensor in 0..workload.sensors_per_district {
            edges.push((
                format!("district{district}-sensor{sensor}"),
                format!("district{district}-gateway"),
            ));
        }
        edges.push((format!("district{district}-gateway"), "council-analytics".to_string()));
    }
    edges.push(("council-analytics".to_string(), "city-anonymiser".to_string()));
    Topology { name: "smart-city".into(), components, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DataplaneConfig;

    #[test]
    fn smart_home_topology_installs_fully() {
        let topology = smart_home(4, 7);
        let dataplane = Dataplane::new("smart-home-test", DataplaneConfig::default());
        let admitted = topology
            .install(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("install succeeds");
        // Every wired edge is IFC-legal in the scenario, so all must be admitted.
        assert_eq!(admitted, topology.edges.len());
        assert!(!topology.publishers().is_empty());
    }

    #[test]
    fn smart_city_topology_installs_fully() {
        let topology = smart_city(3, 4);
        let dataplane = Dataplane::new("smart-city-test", DataplaneConfig::default());
        let admitted = topology
            .install(&dataplane, &ContextSnapshot::default(), Timestamp(1))
            .expect("install succeeds");
        assert_eq!(admitted, topology.edges.len());
        // 3 districts × 4 sensors + 3 gateway→analytics + analytics→anonymiser.
        assert_eq!(topology.edges.len(), 3 * 4 + 3 + 1);
    }
}
