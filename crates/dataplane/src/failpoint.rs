//! Deterministic, seeded fault injection for the dataplane.
//!
//! A [`FailpointRegistry`] is a set of [`FailpointSpec`]s attached to a
//! [`DataplaneConfig`](crate::DataplaneConfig) via
//! [`failpoints`](crate::DataplaneConfig::failpoints). Each spec names a
//! [`FailpointSite`] — a fixed probe point on the data path — and a
//! [`FaultKind`] to inject there: a panic (exercising shard supervision), a
//! delay (modelling a stall), or queue-full backpressure (ingress only).
//!
//! Probes follow the same zero-cost-when-disabled discipline as
//! [`ObsConfig`](legaliot_obs::ObsConfig): with no registry configured (the
//! default) each probe is a single branch on an `Option`, and the
//! `failpoint_overhead` A/B in the bench example keeps that claim measured.
//! With a registry attached, every probe execution increments the site's hit
//! counter and evaluates each spec **as a pure function of the hit index**, so
//! a given seed and hit order reproduce the same fault schedule exactly. (With
//! multiple shards the interleaving of hits across threads is scheduling-
//! dependent; *which* hit index fires is still deterministic, *which thread*
//! observes it is not.)

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Named probe points where faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailpointSite {
    /// Top of the shard worker loop, before a batch is popped. Nothing is in
    /// flight when a panic fires here, so it exercises pure restart.
    ShardLoop,
    /// Per-delivery enforcement, at the top of the shard's delivery
    /// processing: a panic here abandons the in-flight message (which the
    /// supervisor then evidences as lost).
    ShardProcess,
    /// The per-shard audit append path, immediately before a flow-check
    /// record is written.
    AuditAppend,
    /// The deferred mailbox hand-off, before the push: a delay here models a
    /// stalled consumer, a panic abandons an already-enforced delivery.
    MailboxHandOff,
    /// The publisher-side ingress enqueue
    /// ([`Dataplane::publish`](crate::Dataplane::publish) and friends).
    /// [`FaultKind::QueueFull`] is
    /// honoured only here; [`FaultKind::Panic`] is ignored here (it would
    /// crash the publisher's thread, not a supervised worker).
    IngressEnqueue,
    /// A durable-audit segment frame write ([`IoOp::Write`](legaliot_audit::IoOp)).
    /// [`FaultKind::ShortWrite`] tears the frame on disk and wedges the store;
    /// [`FaultKind::IoError`] wedges it with a clean prefix.
    SegmentWrite,
    /// A durable-audit segment fsync ([`IoOp::Sync`](legaliot_audit::IoOp)).
    /// [`FaultKind::Delay`] models a slow fsync; [`FaultKind::IoError`] a
    /// failed one (unsynced bytes stay visible in the stats).
    SegmentSync,
    /// Opening/rotating a durable-audit segment file
    /// ([`IoOp::Rotate`](legaliot_audit::IoOp)). [`FaultKind::ShortWrite`]
    /// tears the new segment's header.
    SegmentRotate,
}

/// Number of distinct failpoint sites (indexes the per-site counters).
const SITE_COUNT: usize = 8;

impl FailpointSite {
    /// Every site, in stable order.
    pub const ALL: [FailpointSite; SITE_COUNT] = [
        FailpointSite::ShardLoop,
        FailpointSite::ShardProcess,
        FailpointSite::AuditAppend,
        FailpointSite::MailboxHandOff,
        FailpointSite::IngressEnqueue,
        FailpointSite::SegmentWrite,
        FailpointSite::SegmentSync,
        FailpointSite::SegmentRotate,
    ];

    /// The site's stable catalog name (used in panic messages and docs).
    pub fn name(self) -> &'static str {
        match self {
            FailpointSite::ShardLoop => "shard.loop",
            FailpointSite::ShardProcess => "shard.process",
            FailpointSite::AuditAppend => "audit.append",
            FailpointSite::MailboxHandOff => "mailbox.handoff",
            FailpointSite::IngressEnqueue => "ingress.enqueue",
            FailpointSite::SegmentWrite => "segment.write",
            FailpointSite::SegmentSync => "segment.sync",
            FailpointSite::SegmentRotate => "segment.rotate",
        }
    }

    fn index(self) -> usize {
        match self {
            FailpointSite::ShardLoop => 0,
            FailpointSite::ShardProcess => 1,
            FailpointSite::AuditAppend => 2,
            FailpointSite::MailboxHandOff => 3,
            FailpointSite::IngressEnqueue => 4,
            FailpointSite::SegmentWrite => 5,
            FailpointSite::SegmentSync => 6,
            FailpointSite::SegmentRotate => 7,
        }
    }
}

impl fmt::Display for FailpointSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a message naming the site. On a shard site this is caught by
    /// the shard supervisor (restart + loss evidence); at
    /// [`FailpointSite::IngressEnqueue`] it is ignored.
    Panic,
    /// Sleep for the given duration before proceeding (a stall, not a fault:
    /// no work is lost, but watchdogs and backpressure get exercised).
    Delay(Duration),
    /// Report queue-full backpressure to the publisher without touching the
    /// queue. Honoured only at [`FailpointSite::IngressEnqueue`]; elsewhere it
    /// is ignored.
    QueueFull,
    /// Write only part of the bytes, leaving a torn tail on disk, then wedge
    /// the segment store. Honoured only at the `segment.*` sites; elsewhere it
    /// is ignored.
    ShortWrite,
    /// Fail the IO operation outright and wedge the segment store (its disk
    /// state stays a clean prefix). Honoured only at the `segment.*` sites;
    /// elsewhere it is ignored.
    IoError,
}

/// How a spec decides whether hit number `n` (0-based, per site) fires.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Fire on hit indices `first, first + every, first + 2·every, …`
    /// (`every == 0` fires on `first` only).
    Nth { first: u64, every: u64 },
    /// Fire each hit independently with probability `millionths / 1_000_000`,
    /// derived by hashing the registry seed with the hit index — reproducible
    /// for a given seed, uncorrelated across hits.
    Seeded { millionths: u32 },
}

/// One armed fault: a site, a fault kind, a firing schedule and an optional
/// cap on total firings.
#[derive(Debug, Clone, Copy)]
pub struct FailpointSpec {
    site: FailpointSite,
    kind: FaultKind,
    trigger: Trigger,
    /// Maximum firings of this spec (`u64::MAX` = unlimited).
    limit: u64,
}

impl FailpointSpec {
    /// Fires deterministically on site-hit indices `first, first + every, …`
    /// (0-based; `every == 0` fires exactly once, on hit `first`).
    pub fn on_hits(site: FailpointSite, kind: FaultKind, first: u64, every: u64) -> Self {
        FailpointSpec { site, kind, trigger: Trigger::Nth { first, every }, limit: u64::MAX }
    }

    /// Fires each hit independently with the given probability (clamped to
    /// `[0, 1]`), pseudo-randomly but reproducibly from the registry seed.
    pub fn with_probability(site: FailpointSite, kind: FaultKind, probability: f64) -> Self {
        let millionths = (probability.clamp(0.0, 1.0) * 1_000_000.0) as u32;
        FailpointSpec { site, kind, trigger: Trigger::Seeded { millionths }, limit: u64::MAX }
    }

    /// Caps how many times this spec may fire in total.
    pub fn limit(mut self, limit: u64) -> Self {
        self.limit = limit;
        self
    }

    /// Whether this spec's schedule matches site-hit index `hit` (ignoring the
    /// firing cap, which the registry enforces with a counter).
    fn matches(&self, seed: u64, spec_index: usize, hit: u64) -> bool {
        match self.trigger {
            Trigger::Nth { first, every } => {
                hit >= first
                    && (every == 0 && hit == first || every != 0 && (hit - first) % every == 0)
            }
            Trigger::Seeded { millionths } => {
                let mixed = splitmix64(seed ^ (spec_index as u64).wrapping_mul(0x9E37_79B9) ^ hit);
                mixed % 1_000_000 < u64::from(millionths)
            }
        }
    }
}

/// SplitMix64 finaliser: a high-quality 64-bit mix, so per-hit probabilistic
/// decisions are uncorrelated even for consecutive hit indices.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded set of armed failpoints with per-site hit and firing counters.
///
/// Immutable once built (specs are fixed; only the counters move), so one
/// `Arc<FailpointRegistry>` is shared by every shard and publisher without
/// locking.
#[derive(Debug)]
pub struct FailpointRegistry {
    seed: u64,
    specs: Vec<FailpointSpec>,
    /// Firings so far per spec (enforces each spec's `limit`).
    spec_fired: Vec<AtomicU64>,
    /// Probe executions per site.
    hits: [AtomicU64; SITE_COUNT],
    /// Faults actually injected per site.
    fired: [AtomicU64; SITE_COUNT],
}

impl FailpointRegistry {
    /// An empty registry (no armed faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FailpointRegistry {
            seed,
            specs: Vec::new(),
            spec_fired: Vec::new(),
            hits: Default::default(),
            fired: Default::default(),
        }
    }

    /// Arms one more failpoint.
    pub fn with_spec(mut self, spec: FailpointSpec) -> Self {
        self.specs.push(spec);
        self.spec_fired.push(AtomicU64::new(0));
        self
    }

    /// The seed probabilistic triggers are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many times the probe at `site` has executed.
    pub fn hits(&self, site: FailpointSite) -> u64 {
        self.hits[site.index()].load(Ordering::Relaxed)
    }

    /// How many faults have been injected at `site`.
    pub fn fired(&self, site: FailpointSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Records one probe execution at `site` and returns the fault to inject,
    /// if any armed spec fires on this hit. The decision is a pure function of
    /// (seed, spec, hit index), plus each spec's firing cap.
    pub fn check(&self, site: FailpointSite) -> Option<FaultKind> {
        let hit = self.hits[site.index()].fetch_add(1, Ordering::Relaxed);
        for (spec_index, spec) in self.specs.iter().enumerate() {
            if spec.site != site || !spec.matches(self.seed, spec_index, hit) {
                continue;
            }
            // Claim one of the spec's remaining firings; a concurrent matched
            // hit that loses the race falls through to the next spec.
            let claimed = self.spec_fired[spec_index]
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |fired| {
                    (fired < spec.limit).then_some(fired + 1)
                })
                .is_ok();
            if claimed {
                self.fired[site.index()].fetch_add(1, Ordering::Relaxed);
                return Some(spec.kind);
            }
        }
        None
    }
}

/// Probe for worker-side sites: panics or sleeps when an armed fault fires
/// (`QueueFull` is meaningless off the ingress path and is ignored). The
/// disabled path is one branch.
#[inline]
pub(crate) fn inject(failpoints: &Option<std::sync::Arc<FailpointRegistry>>, site: FailpointSite) {
    if let Some(registry) = failpoints {
        match registry.check(site) {
            Some(FaultKind::Panic) => panic!("failpoint `{}` fired", site.name()),
            Some(FaultKind::Delay(delay)) => std::thread::sleep(delay),
            Some(FaultKind::QueueFull | FaultKind::ShortWrite | FaultKind::IoError) | None => {}
        }
    }
}

/// Probe for the ingress enqueue site: returns `true` when the publisher
/// should observe queue-full backpressure. Delays sleep in the publisher's
/// thread; panics are ignored here (they would kill the caller, not a
/// supervised worker).
#[inline]
pub(crate) fn inject_ingress(failpoints: &Option<std::sync::Arc<FailpointRegistry>>) -> bool {
    if let Some(registry) = failpoints {
        match registry.check(FailpointSite::IngressEnqueue) {
            Some(FaultKind::QueueFull) => return true,
            Some(FaultKind::Delay(delay)) => std::thread::sleep(delay),
            Some(FaultKind::Panic | FaultKind::ShortWrite | FaultKind::IoError) | None => {}
        }
    }
    false
}

/// Builds a [`FaultHook`](legaliot_audit::FaultHook) for a shard's
/// [`SegmentStore`](legaliot_audit::SegmentStore) that maps its IO operations
/// onto the `segment.*` failpoint sites of `registry`, translating the generic
/// fault kinds into segment IO faults (`ShortWrite` → torn write, `IoError` →
/// hard error, `Delay` → slow IO; `Panic`/`QueueFull` are meaningless for
/// segment IO and are ignored).
pub(crate) fn segment_fault_hook(
    registry: std::sync::Arc<FailpointRegistry>,
) -> legaliot_audit::FaultHook {
    use legaliot_audit::{IoFault, IoOp};
    Box::new(move |op| {
        let site = match op {
            IoOp::Write => FailpointSite::SegmentWrite,
            IoOp::Sync => FailpointSite::SegmentSync,
            IoOp::Rotate => FailpointSite::SegmentRotate,
        };
        match registry.check(site) {
            Some(FaultKind::ShortWrite) => Some(IoFault::ShortWrite),
            Some(FaultKind::IoError) => Some(IoFault::Error),
            Some(FaultKind::Delay(delay)) => Some(IoFault::Delay(delay)),
            Some(FaultKind::Panic | FaultKind::QueueFull) | None => None,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_trigger_fires_on_schedule() {
        let registry = FailpointRegistry::new(7).with_spec(FailpointSpec::on_hits(
            FailpointSite::ShardProcess,
            FaultKind::Panic,
            2,
            3,
        ));
        let fired: Vec<bool> =
            (0..9).map(|_| registry.check(FailpointSite::ShardProcess).is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false, false, true]);
        assert_eq!(registry.hits(FailpointSite::ShardProcess), 9);
        assert_eq!(registry.fired(FailpointSite::ShardProcess), 3);
        // Other sites are untouched.
        assert_eq!(registry.hits(FailpointSite::AuditAppend), 0);
    }

    #[test]
    fn one_shot_trigger_fires_exactly_once() {
        let registry = FailpointRegistry::new(0).with_spec(FailpointSpec::on_hits(
            FailpointSite::ShardLoop,
            FaultKind::Panic,
            1,
            0,
        ));
        let fired: Vec<bool> =
            (0..5).map(|_| registry.check(FailpointSite::ShardLoop).is_some()).collect();
        assert_eq!(fired, vec![false, true, false, false, false]);
    }

    #[test]
    fn limit_caps_total_firings() {
        let registry = FailpointRegistry::new(0).with_spec(
            FailpointSpec::on_hits(FailpointSite::AuditAppend, FaultKind::Panic, 0, 1).limit(2),
        );
        let fired =
            (0..10).filter(|_| registry.check(FailpointSite::AuditAppend).is_some()).count();
        assert_eq!(fired, 2);
        assert_eq!(registry.fired(FailpointSite::AuditAppend), 2);
    }

    #[test]
    fn seeded_trigger_is_reproducible_and_roughly_calibrated() {
        let run = |seed: u64| -> Vec<bool> {
            let registry = FailpointRegistry::new(seed).with_spec(FailpointSpec::with_probability(
                FailpointSite::MailboxHandOff,
                FaultKind::Delay(Duration::from_millis(1)),
                0.25,
            ));
            (0..2000).map(|_| registry.check(FailpointSite::MailboxHandOff).is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        let c = run(43);
        assert_ne!(a, c, "different seeds should differ");
        let fired = a.iter().filter(|f| **f).count();
        assert!((300..700).contains(&fired), "~25% of 2000 hits expected, got {fired}");
    }

    #[test]
    fn probe_helpers_are_inert_without_a_registry() {
        let none: Option<std::sync::Arc<FailpointRegistry>> = None;
        inject(&none, FailpointSite::ShardProcess);
        assert!(!inject_ingress(&none));
    }

    #[test]
    fn ingress_probe_reports_queue_full() {
        let registry = std::sync::Arc::new(FailpointRegistry::new(0).with_spec(
            FailpointSpec::on_hits(FailpointSite::IngressEnqueue, FaultKind::QueueFull, 1, 0),
        ));
        let some = Some(registry);
        assert!(!inject_ingress(&some));
        assert!(inject_ingress(&some));
        assert!(!inject_ingress(&some));
    }

    #[test]
    fn site_catalog_names_are_stable() {
        let names: Vec<&str> = FailpointSite::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "shard.loop",
                "shard.process",
                "audit.append",
                "mailbox.handoff",
                "ingress.enqueue",
                "segment.write",
                "segment.sync",
                "segment.rotate"
            ]
        );
        assert_eq!(FailpointSite::ShardLoop.to_string(), "shard.loop");
    }

    #[test]
    fn segment_hook_maps_sites_and_kinds() {
        use legaliot_audit::{IoFault, IoOp};
        let registry = std::sync::Arc::new(
            FailpointRegistry::new(0)
                .with_spec(FailpointSpec::on_hits(
                    FailpointSite::SegmentWrite,
                    FaultKind::ShortWrite,
                    0,
                    0,
                ))
                .with_spec(FailpointSpec::on_hits(
                    FailpointSite::SegmentSync,
                    FaultKind::IoError,
                    0,
                    0,
                ))
                .with_spec(FailpointSpec::on_hits(
                    FailpointSite::SegmentRotate,
                    FaultKind::Delay(Duration::from_micros(1)),
                    0,
                    0,
                ))
                // A kind that makes no sense for segment IO is filtered out.
                .with_spec(FailpointSpec::on_hits(
                    FailpointSite::SegmentWrite,
                    FaultKind::Panic,
                    1,
                    1,
                )),
        );
        let mut hook = segment_fault_hook(std::sync::Arc::clone(&registry));
        assert_eq!(hook(IoOp::Write), Some(IoFault::ShortWrite));
        assert_eq!(hook(IoOp::Sync), Some(IoFault::Error));
        assert_eq!(hook(IoOp::Rotate), Some(IoFault::Delay(Duration::from_micros(1))));
        // Second Write hit matches the Panic spec, which the hook ignores.
        assert_eq!(hook(IoOp::Write), None);
        assert_eq!(registry.fired(FailpointSite::SegmentWrite), 2);
        assert_eq!(registry.hits(FailpointSite::SegmentSync), 1);
    }
}
