//! A bounded multi-producer queue with blocking backpressure.
//!
//! Each shard owns one ingress queue. Producers (`publish` callers, the control plane's
//! invalidation broadcasts) push from any thread; the shard's worker thread drains in
//! batches to amortise lock traffic. When the queue is full, [`BoundedQueue::push`]
//! blocks the producer — backpressure instead of unbounded memory — while
//! [`BoundedQueue::try_push`] surfaces the condition to callers that would rather shed
//! load than stall.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Condvar;

use parking_lot::Mutex;

/// How many times a consumer yields the CPU re-checking an empty queue before parking
/// on the condvar. Spinning (with `yield_now`, so producers get the core) avoids a
/// park/wake syscall pair per batch when producers are active — the dominant cost of
/// fine-grained sharding on few cores.
const EMPTY_SPINS: usize = 32;

/// A bounded FIFO queue: blocking or failing pushes, batch pops.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<VecDeque<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    /// Consumers currently parked on `not_empty`; producers skip the notify syscall
    /// when nobody is waiting. Only written under the lock.
    waiting_consumers: AtomicUsize,
    /// Times a consumer exhausted its spin budget and parked on the condvar
    /// (telemetry; incremented on the park slow path only).
    consumer_parks: AtomicU64,
    /// Times a producer found the queue full and had to wait (telemetry; incremented
    /// on the full slow path only).
    producer_waits: AtomicU64,
    capacity: usize,
}

/// Contention counters of a [`BoundedQueue`]: how often its slow paths ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueContention {
    /// Consumer parks: `pop_batch` exhausted its spin budget on an empty queue and
    /// parked on the condvar (a park/wake syscall pair per count).
    pub consumer_parks: u64,
    /// Producer waits: `push` found the queue full and blocked until a batch drained
    /// (ingress backpressure events).
    pub producer_waits: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            waiting_consumers: AtomicUsize::new(0),
            consumer_parks: AtomicU64::new(0),
            producer_waits: AtomicU64::new(0),
            capacity,
        }
    }

    /// The maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// How often this queue's slow paths ran (consumer parks, producer waits).
    pub fn contention(&self) -> QueueContention {
        QueueContention {
            consumer_parks: self.consumer_parks.load(Ordering::Relaxed),
            producer_waits: self.producer_waits.load(Ordering::Relaxed),
        }
    }

    /// Pushes an item, blocking while the queue is full (backpressure). Returns the
    /// queue length right after the push, letting producers feed a depth
    /// high-water-mark gauge without an extra lock acquisition.
    pub fn push(&self, item: T) -> usize {
        let mut queue = self.inner.lock();
        if queue.len() >= self.capacity {
            self.producer_waits.fetch_add(1, Ordering::Relaxed);
            while queue.len() >= self.capacity {
                queue =
                    self.not_full.wait(queue).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        queue.push_back(item);
        let depth = queue.len();
        // Checked under the lock: a consumer either already parked (gets the notify)
        // or has not yet incremented the count and will re-check the queue before
        // parking. Skipping the notify when nobody waits removes a syscall per push.
        let wake = self.waiting_consumers.load(Ordering::Relaxed) > 0;
        drop(queue);
        if wake {
            self.not_empty.notify_one();
        }
        depth
    }

    /// Attempts to push without blocking; returns the resulting queue length, or the
    /// item back when the queue is full.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut queue = self.inner.lock();
        if queue.len() >= self.capacity {
            return Err(item);
        }
        queue.push_back(item);
        let depth = queue.len();
        let wake = self.waiting_consumers.load(Ordering::Relaxed) > 0;
        drop(queue);
        if wake {
            self.not_empty.notify_one();
        }
        Ok(depth)
    }

    /// Blocks until at least one item is available, then moves up to `max` items into
    /// `out` (which is cleared first). Returns how many items were popped.
    ///
    /// An empty queue is first retried a bounded number of times with `yield_now`
    /// (letting producers run) before parking on the condvar.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        out.clear();
        let mut spins = 0;
        let mut queue = loop {
            let queue = self.inner.lock();
            if !queue.is_empty() {
                break queue;
            }
            if spins < EMPTY_SPINS {
                spins += 1;
                drop(queue);
                std::thread::yield_now();
                continue;
            }
            // Park: the count is raised under the lock, so a producer that pushes
            // after we release it (inside `wait`) is guaranteed to see it and notify.
            self.consumer_parks.fetch_add(1, Ordering::Relaxed);
            self.waiting_consumers.fetch_add(1, Ordering::Relaxed);
            let mut queue = queue;
            while queue.is_empty() {
                queue =
                    self.not_empty.wait(queue).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            self.waiting_consumers.fetch_sub(1, Ordering::Relaxed);
            break queue;
        };
        let was_full = queue.len() >= self.capacity;
        let take = queue.len().min(max.max(1));
        out.extend(queue.drain(..take));
        drop(queue);
        // Producers only park when the queue is full; a batch frees `take` slots at
        // once, so wake them all.
        if was_full {
            self.not_full.notify_all();
        }
        take
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_batch_pop() {
        let q = BoundedQueue::new(8);
        for n in 0..5 {
            q.push(n);
        }
        assert_eq!(q.len(), 5);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.pop_batch(&mut out, 10), 2);
        assert_eq!(out, vec![3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_fails_when_full() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        let mut out = Vec::new();
        q.pop_batch(&mut out, 1);
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn blocking_push_resumes_after_drain() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32);
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1)) // blocks until the consumer drains
        };
        let mut out = Vec::new();
        // Drain until both items have come through.
        let mut seen = Vec::new();
        while seen.len() < 2 {
            q.pop_batch(&mut out, 4);
            seen.extend(out.iter().copied());
        }
        producer.join().unwrap();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn contention_counters_track_slow_paths() {
        let q = Arc::new(BoundedQueue::new(1));
        assert_eq!(q.contention(), QueueContention::default());
        assert_eq!(q.push(0u32), 1);
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.push(1)) // full: counted as a producer wait
        };
        // Wait until the producer has registered its wait, then drain.
        while q.contention().producer_waits == 0 {
            thread::yield_now();
        }
        let mut out = Vec::new();
        let mut seen = 0;
        while seen < 2 {
            seen += q.pop_batch(&mut out, 4);
        }
        producer.join().unwrap();
        assert_eq!(q.contention().producer_waits, 1);

        // Empty queue: a delayed push forces the consumer past its spin budget.
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_batch(&mut out, 4)
            })
        };
        thread::sleep(std::time::Duration::from_millis(30));
        q.push(2);
        assert_eq!(consumer.join().unwrap(), 1);
        assert!(q.contention().consumer_parks >= 1);
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_batch(&mut out, 4);
                out
            })
        };
        thread::sleep(std::time::Duration::from_millis(20));
        q.push(7u32);
        assert_eq!(consumer.join().unwrap(), vec![7]);
    }
}
