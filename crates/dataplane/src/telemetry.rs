//! Per-stage enforcement telemetry: span timing, contention counters, and the
//! [`TelemetrySnapshot`] behind [`Dataplane::telemetry`](crate::Dataplane::telemetry).
//!
//! Each shard owns one [`LatencyHistogram`] per [`Stage`] plus a queue-depth
//! high-water-mark gauge; the worker records into them with relaxed atomics only.
//! When [`DataplaneConfig::telemetry`](crate::DataplaneConfig::telemetry) is disabled,
//! every clock read is skipped — the internal `DeliveryProbe` carries no `Instant` and each
//! instrumentation point reduces to one branch — so the hot path keeps its
//! uninstrumented cost (the bench's `telemetry_overhead` block quantifies this).
//!
//! ## Stage glossary
//!
//! Spans cover the §8.2.2 enforcement sequence as the shard worker executes it:
//!
//! - `queue_wait` — publish-side enqueue to the worker popping the task (ingress
//!   queueing delay).
//! - `isolation` — endpoint resolution in the directory plus the isolation check.
//! - `ac_hit` / `ac_miss` — the per-message contextual AC decision at message-type
//!   granularity, split by whether the [`AdmissionCache`] answered (payload
//!   deliveries only; the flow-only path never consults it).
//! - `ifc` — the IFC flow decision over the message's effective context (including
//!   decision-cache lookup and any lattice walk).
//! - `quench` — per-attribute source quenching: mask lookup/computation, its
//!   application, and any `MessageQuenched` evidence append.
//! - `audit_append` — appending the per-message `FlowChecked` record (recorded only
//!   when one is written, so summarised-mode cache hits do not dilute the span).
//! - `handoff` — the deferred mailbox push after the directory lock is released,
//!   including any Block-policy stall.
//! - `delivery` — end-to-end enqueue → enforcement complete for *allowed* messages:
//!   the publish→deliver latency the bench reports percentiles of.
//!
//! Contention series:
//!
//! - `dir_lock_wait` — time the worker waited to acquire the directory read lock
//!   (one sample per batch containing deliveries).
//! - `block_stall` — time a `handoff` spent parked on a full Block-policy mailbox
//!   (one sample per push that actually stalled).
//! - queue depth high-water marks and consumer-park / producer-wait counts come from
//!   each shard's ingress [`BoundedQueue`](crate::queue::BoundedQueue) and are always
//!   on (relaxed counters on slow paths only).
//!
//! [`AdmissionCache`]: legaliot_middleware::admission::AdmissionCache

use std::time::Instant;

use legaliot_obs::{HistogramSnapshot, LatencyHistogram, MaxGauge, MetricsSnapshot};

use crate::engine::DataplaneStats;
use crate::queue::QueueContention;

/// The timed spans of the per-shard enforcement pipeline (see the module docs for
/// the glossary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are documented as a set in the module glossary
pub enum Stage {
    QueueWait,
    Isolation,
    AcHit,
    AcMiss,
    Ifc,
    Quench,
    AuditAppend,
    Handoff,
    Delivery,
    DirLockWait,
    BlockStall,
}

impl Stage {
    /// Every stage, in exposition order.
    pub const ALL: [Stage; 11] = [
        Stage::QueueWait,
        Stage::Isolation,
        Stage::AcHit,
        Stage::AcMiss,
        Stage::Ifc,
        Stage::Quench,
        Stage::AuditAppend,
        Stage::Handoff,
        Stage::Delivery,
        Stage::DirLockWait,
        Stage::BlockStall,
    ];

    /// The stage's stable exposition name (snake_case; used as the `stage.<name>`
    /// histogram key in the JSON/text exposition and the bench output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Isolation => "isolation",
            Stage::AcHit => "ac_hit",
            Stage::AcMiss => "ac_miss",
            Stage::Ifc => "ifc",
            Stage::Quench => "quench",
            Stage::AuditAppend => "audit_append",
            Stage::Handoff => "handoff",
            Stage::Delivery => "delivery",
            Stage::DirLockWait => "dir_lock_wait",
            Stage::BlockStall => "block_stall",
        }
    }
}

/// One shard's live telemetry: a histogram per stage plus the ingress-queue depth
/// high-water mark. Shared between the worker (writes) and the engine (snapshots).
#[derive(Debug)]
pub(crate) struct ShardTelemetry {
    enabled: bool,
    stages: [LatencyHistogram; Stage::ALL.len()],
    queue_depth_hwm: MaxGauge,
}

impl ShardTelemetry {
    pub(crate) fn new(enabled: bool) -> Self {
        ShardTelemetry {
            enabled,
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            queue_depth_hwm: MaxGauge::new(),
        }
    }

    /// Whether span timing is on (callers gate their `Instant::now()` calls on this).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    #[inline]
    pub(crate) fn record_ns(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record(ns);
    }

    /// The live histogram of one stage (for recording a Block stall from inside the
    /// mailbox push).
    #[inline]
    pub(crate) fn stage_histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage as usize]
    }

    /// Feeds the depth observed right after a queue push into the high-water mark.
    #[inline]
    pub(crate) fn record_queue_depth(&self, depth: usize) {
        if self.enabled {
            self.queue_depth_hwm.record(depth as u64);
        }
    }

    pub(crate) fn snapshot(&self, queue: QueueContention) -> ShardTelemetrySnapshot {
        ShardTelemetrySnapshot {
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
            queue_depth_high_water: self.queue_depth_hwm.get(),
            queue_consumer_parks: queue.consumer_parks,
            queue_producer_waits: queue.producer_waits,
        }
    }
}

/// Times the stages of one delivery. Constructed per task by the worker; when
/// telemetry is disabled it carries no timestamp and every method is one branch.
pub(crate) struct DeliveryProbe<'a> {
    telemetry: &'a ShardTelemetry,
    epoch: Instant,
    enqueued_ns: u64,
    last: Option<Instant>,
}

impl<'a> DeliveryProbe<'a> {
    /// Starts timing one delivery: records its ingress-queue wait (`now - enqueued`)
    /// and anchors the first stage span.
    pub(crate) fn begin(
        telemetry: &'a ShardTelemetry,
        epoch: Instant,
        enqueued_ns: u64,
    ) -> DeliveryProbe<'a> {
        let last = if telemetry.enabled() {
            let now = Instant::now();
            let now_ns = now.duration_since(epoch).as_nanos() as u64;
            telemetry.record_ns(Stage::QueueWait, now_ns.saturating_sub(enqueued_ns));
            Some(now)
        } else {
            None
        };
        DeliveryProbe { telemetry, epoch, enqueued_ns, last }
    }

    /// Ends the current span, attributing it to `stage`, and starts the next one.
    #[inline]
    pub(crate) fn lap(&mut self, stage: Stage) {
        if let Some(last) = self.last {
            let now = Instant::now();
            self.telemetry.record_ns(stage, now.duration_since(last).as_nanos() as u64);
            self.last = Some(now);
        }
    }

    /// Restarts the span anchor without recording (the stage did not run, e.g. no
    /// audit record was appended for this message).
    #[inline]
    pub(crate) fn skip(&mut self) {
        if self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }

    /// Records the end-to-end `delivery` latency (enqueue → enforcement complete).
    /// Called once per *allowed* message.
    #[inline]
    pub(crate) fn finish(&mut self) {
        if self.last.is_some() {
            let now_ns = Instant::now().duration_since(self.epoch).as_nanos() as u64;
            self.telemetry.record_ns(Stage::Delivery, now_ns.saturating_sub(self.enqueued_ns));
        }
    }
}

/// One shard's telemetry at a point in time: a [`HistogramSnapshot`] per [`Stage`]
/// plus the shard's queue contention counters.
#[derive(Clone, Debug)]
pub struct ShardTelemetrySnapshot {
    stages: [HistogramSnapshot; Stage::ALL.len()],
    /// Peak ingress-queue depth observed by producers (post-push length).
    pub queue_depth_high_water: u64,
    /// Times the shard worker parked on its empty ingress queue.
    pub queue_consumer_parks: u64,
    /// Times a publisher blocked on the full ingress queue.
    pub queue_producer_waits: u64,
}

impl ShardTelemetrySnapshot {
    fn empty() -> Self {
        ShardTelemetrySnapshot {
            stages: [HistogramSnapshot::empty(); Stage::ALL.len()],
            queue_depth_high_water: 0,
            queue_consumer_parks: 0,
            queue_producer_waits: 0,
        }
    }

    /// The latency histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage as usize]
    }

    /// Folds another shard's snapshot into this one: histograms merge bucket-wise
    /// (exact), park/wait counts add, and the depth high-water mark takes the max.
    pub fn merge(&mut self, other: &ShardTelemetrySnapshot) {
        for (mine, theirs) in self.stages.iter_mut().zip(other.stages.iter()) {
            mine.merge(theirs);
        }
        self.queue_depth_high_water = self.queue_depth_high_water.max(other.queue_depth_high_water);
        self.queue_consumer_parks += other.queue_consumer_parks;
        self.queue_producer_waits += other.queue_producer_waits;
    }
}

/// A point-in-time view of the whole dataplane's telemetry: aggregated counters,
/// per-shard stage histograms and contention series. Obtained from
/// [`Dataplane::telemetry`](crate::Dataplane::telemetry); render it with
/// [`to_json`](Self::to_json) / [`to_text`](Self::to_text) (schema documented on
/// [`legaliot_obs::MetricsSnapshot`]) or consume it programmatically.
#[derive(Clone, Debug)]
pub struct TelemetrySnapshot {
    /// The dataplane's name (as passed to [`Dataplane::new`](crate::Dataplane::new)).
    pub dataplane: String,
    /// Whether span timing was enabled; when `false` the stage histograms are empty
    /// but counters and queue contention series are still populated.
    pub enabled: bool,
    /// Aggregated message counters, identical to
    /// [`Dataplane::stats`](crate::Dataplane::stats).
    pub stats: DataplaneStats,
    /// Per-shard stage histograms and contention counters, index-aligned with the
    /// shard numbering.
    pub shards: Vec<ShardTelemetrySnapshot>,
}

impl TelemetrySnapshot {
    /// All shards folded into one: stage histograms merged bucket-wise, park/wait
    /// counts summed, depth high-water mark maxed.
    pub fn merged(&self) -> ShardTelemetrySnapshot {
        let mut merged = ShardTelemetrySnapshot::empty();
        for shard in &self.shards {
            merged.merge(shard);
        }
        merged
    }

    /// Flattens the snapshot into named metrics for exposition.
    ///
    /// Naming scheme (stable): [`DataplaneStats`] fields become counters under their
    /// field names — including the fault-tolerance counters `shard_restarts` and
    /// `deliveries_lost`, with `degraded_shards` exposed as a gauge (it is a level,
    /// the number of shards currently past their restart budget, not a monotone
    /// count); merged stage histograms are `stage.<name>` and per-shard ones
    /// `shard<i>.stage.<name>`; queue contention appears as the counters
    /// `queue_consumer_parks` / `queue_producer_waits` (summed) plus per-shard
    /// variants, and the `queue_depth_hwm` gauge (max, plus per-shard variants).
    pub fn exposition(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        out.record_counter("published", self.stats.published);
        out.record_counter("delivered", self.stats.delivered);
        out.record_counter("denied", self.stats.denied);
        out.record_counter("missing_endpoint", self.stats.missing_endpoint);
        out.record_counter("cache_hits", self.stats.cache_hits);
        out.record_counter("cache_misses", self.stats.cache_misses);
        out.record_counter("ac_cache_hits", self.stats.ac_cache_hits);
        out.record_counter("ac_cache_misses", self.stats.ac_cache_misses);
        out.record_counter("quenched_attributes", self.stats.quenched_attributes);
        out.record_counter("payload_bytes", self.stats.payload_bytes);
        out.record_counter("receiver_enqueued", self.stats.receiver_enqueued);
        out.record_counter("receiver_dropped", self.stats.receiver_dropped);
        out.record_counter("shard_restarts", self.stats.shard_restarts);
        out.record_counter("deliveries_lost", self.stats.deliveries_lost);
        out.record_gauge("degraded_shards", self.stats.degraded_shards);
        out.record_counter("segments_written", self.stats.segments_written);
        out.record_counter("segment_records_persisted", self.stats.segment_records_persisted);
        out.record_counter("segment_bytes_fsynced", self.stats.segment_bytes_fsynced);
        out.record_counter("segment_records_dropped", self.stats.segment_records_dropped);
        out.record_counter("recovery_truncations", self.stats.recovery_truncations);
        let merged = self.merged();
        out.record_counter("queue_consumer_parks", merged.queue_consumer_parks);
        out.record_counter("queue_producer_waits", merged.queue_producer_waits);
        out.record_gauge("queue_depth_hwm", merged.queue_depth_high_water);
        for stage in Stage::ALL {
            out.record_histogram(format!("stage.{}", stage.name()), *merged.stage(stage));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            out.record_counter(
                format!("shard{i}.queue_consumer_parks"),
                shard.queue_consumer_parks,
            );
            out.record_counter(
                format!("shard{i}.queue_producer_waits"),
                shard.queue_producer_waits,
            );
            out.record_gauge(format!("shard{i}.queue_depth_hwm"), shard.queue_depth_high_water);
            for stage in Stage::ALL {
                out.record_histogram(
                    format!("shard{i}.stage.{}", stage.name()),
                    *shard.stage(stage),
                );
            }
        }
        out
    }

    /// The JSON exposition of [`Self::exposition`].
    pub fn to_json(&self) -> String {
        self.exposition().to_json()
    }

    /// The line-oriented text exposition of [`Self::exposition`].
    pub fn to_text(&self) -> String {
        self.exposition().to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_match_all_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as usize, i, "Stage::ALL out of order at {}", stage.name());
        }
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let telemetry = ShardTelemetry::new(false);
        let epoch = Instant::now();
        let mut probe = DeliveryProbe::begin(&telemetry, epoch, 0);
        probe.lap(Stage::Isolation);
        probe.skip();
        probe.finish();
        let snap = telemetry.snapshot(QueueContention::default());
        for stage in Stage::ALL {
            assert!(snap.stage(stage).is_empty(), "{} recorded while disabled", stage.name());
        }
    }

    #[test]
    fn enabled_probe_attributes_spans() {
        let telemetry = ShardTelemetry::new(true);
        let epoch = Instant::now();
        let mut probe = DeliveryProbe::begin(&telemetry, epoch, 0);
        probe.lap(Stage::Isolation);
        probe.lap(Stage::Ifc);
        probe.finish();
        let snap = telemetry.snapshot(QueueContention::default());
        assert_eq!(snap.stage(Stage::QueueWait).count(), 1);
        assert_eq!(snap.stage(Stage::Isolation).count(), 1);
        assert_eq!(snap.stage(Stage::Ifc).count(), 1);
        assert_eq!(snap.stage(Stage::Delivery).count(), 1);
        assert!(snap.stage(Stage::Quench).is_empty());
    }

    #[test]
    fn merged_snapshot_folds_shards() {
        let a = ShardTelemetry::new(true);
        let b = ShardTelemetry::new(true);
        a.record_ns(Stage::Delivery, 100);
        b.record_ns(Stage::Delivery, 900);
        a.record_queue_depth(4);
        b.record_queue_depth(9);
        let snapshot = TelemetrySnapshot {
            dataplane: "t".to_string(),
            enabled: true,
            stats: DataplaneStats::default(),
            shards: vec![
                a.snapshot(QueueContention { consumer_parks: 1, producer_waits: 2 }),
                b.snapshot(QueueContention { consumer_parks: 3, producer_waits: 4 }),
            ],
        };
        let merged = snapshot.merged();
        assert_eq!(merged.stage(Stage::Delivery).count(), 2);
        assert_eq!(merged.stage(Stage::Delivery).min(), Some(100));
        assert_eq!(merged.stage(Stage::Delivery).max(), Some(900));
        assert_eq!(merged.queue_depth_high_water, 9);
        assert_eq!(merged.queue_consumer_parks, 4);
        assert_eq!(merged.queue_producer_waits, 6);
        let exposition = snapshot.exposition();
        assert_eq!(exposition.histogram("stage.delivery").unwrap().count(), 2);
        assert_eq!(exposition.histogram("shard1.stage.delivery").unwrap().count(), 1);
        assert_eq!(exposition.gauge("queue_depth_hwm"), Some(9));
        assert_eq!(exposition.counter("queue_consumer_parks"), Some(4));
    }
}
