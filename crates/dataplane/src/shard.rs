//! Shard worker: the per-thread enforcement loop.
//!
//! Each shard owns an ingress [`BoundedQueue`](crate::queue::BoundedQueue) of
//! [`ShardTask`]s, a private [`DecisionCache`] for IFC, a private
//! [`AdmissionCache`] for contextual AC (subscribed to the engine's context store), a
//! private quench-mask cache, and a private [`BatchedAppender`] writing a per-shard
//! hash-chained audit log. Components are assigned to shards by a stable hash of their
//! name; a message is enforced on the *destination's* shard, so one overloaded
//! subscriber backpressures only its own shard.
//!
//! The loop amortises synchronisation over pop batches: one directory read-lock
//! acquisition, one context-store freshness check, one `in_flight` decrement and one
//! flush of the statistics counters per batch of up to [`POP_BATCH`] tasks, rather
//! than per message.
//!
//! Payload-carrying deliveries run the full §8.2.2 per-message sequence — isolation,
//! contextual AC at message-type granularity, IFC over the message's *effective*
//! context (sender secrecy ∪ message-level secrecy), then per-attribute source
//! quenching against the subscriber's secrecy label (Fig. 10). In zero-copy mode the
//! body is an `Arc<FrozenMessage>` and quenching is a cached bitmask; in clone-each
//! mode (the measured baseline) the body is a deep-cloned [`Message`] quenched by map
//! clone.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use legaliot_audit::{AuditEvent, AuditLog, AuditRecord, BatchedAppender};
use legaliot_context::{ContextSnapshot, ContextStore, Timestamp};
use legaliot_ifc::{can_flow, context_hash64, DecisionCache, FlowDecision, SecurityContext};
use legaliot_middleware::admission::AdmissionCache;
use legaliot_middleware::{encoded_payload_len, FrozenMessage, Message, MessageType, Operation};

use crate::engine::{AuditDetail, DataplaneConfig, Directory, Endpoint, SharedState};
use crate::failpoint::{self, FailpointSite};
use crate::queue::BoundedQueue;
use crate::subscriber::{MailboxPush, ReceivedMessage};
use crate::telemetry::{DeliveryProbe, ShardTelemetry, Stage};

/// A message body carried by a [`ShardTask::Deliver`].
#[derive(Debug)]
pub(crate) enum DeliveryBody {
    /// Zero-copy: the frozen message is shared across the whole fan-out; this clone
    /// cost one refcount bump at publish time.
    Frozen(Arc<FrozenMessage>),
    /// Clone-per-delivery baseline: a deep copy made for this subscriber at publish
    /// time.
    Cloned(Box<Message>),
}

impl DeliveryBody {
    fn message_type(&self) -> &MessageType {
        match self {
            DeliveryBody::Frozen(message) => message.message_type(),
            DeliveryBody::Cloned(message) => &message.message_type,
        }
    }

    /// The message-level security context (application-supplied extra tags).
    fn extra_context(&self) -> &SecurityContext {
        match self {
            DeliveryBody::Frozen(message) => message.extra_context(),
            DeliveryBody::Cloned(message) => &message.context,
        }
    }

    /// The cheapest handle on this body's message type that can still name it
    /// in loss evidence (an `Arc` bump in zero-copy mode).
    fn lost_type(&self) -> LostType {
        match self {
            DeliveryBody::Frozen(message) => LostType::Frozen(Arc::clone(message)),
            DeliveryBody::Cloned(message) => LostType::Named(message.message_type.clone()),
        }
    }
}

/// Work items delivered to a shard's ingress queue.
#[derive(Debug)]
pub(crate) enum ShardTask {
    /// Enforce and deliver one message `from → to`.
    Deliver {
        /// Source endpoint name.
        from: Arc<str>,
        /// Destination endpoint name (owned by this shard).
        to: Arc<str>,
        /// Simulated send time in milliseconds.
        at_millis: u64,
        /// Enqueue time in nanoseconds since the engine's epoch (0 when telemetry is
        /// disabled); the worker derives ingress-queue wait and end-to-end delivery
        /// latency from it. Taken once per fan-out, not per subscriber.
        enqueued_ns: u64,
        /// The message body, if this is a payload-carrying delivery (`None` for the
        /// flow-only fast path).
        body: Option<DeliveryBody>,
    },
    /// Drop every cached decision involving this context hash (an entity changed
    /// context — §8.2.2 re-evaluation). Also drops quench masks computed against the
    /// superseded context.
    Invalidate {
        /// The superseded context's stable hash.
        context_hash: u64,
    },
    /// Flush audit buffers and exit the worker loop.
    Shutdown,
    /// Test hook: park the worker on a barrier so tests can fill the queue
    /// deterministically.
    #[cfg(test)]
    Block(Arc<std::sync::Barrier>),
}

/// Live per-shard counters, updated by the worker and readable from the engine.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub delivered: AtomicU64,
    pub denied: AtomicU64,
    pub missing_endpoint: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub ac_cache_hits: AtomicU64,
    pub ac_cache_misses: AtomicU64,
    pub quenched: AtomicU64,
    pub payload_bytes: AtomicU64,
    pub receiver_enqueued: AtomicU64,
    pub receiver_dropped: AtomicU64,
    /// Times this shard's worker panicked and was restarted by its supervisor.
    pub restarts: AtomicU64,
    /// Accepted deliveries abandoned by a crash or a degraded shard, each
    /// evidenced as an [`AuditEvent::DeliveryLost`] record — never silent.
    pub lost: AtomicU64,
    /// Set once the restart budget is exhausted: the shard only evidences and
    /// discards from then on, and publishers routed to it fail fast with
    /// `ShardUnavailable` instead of enqueueing work that cannot be enforced.
    pub degraded: AtomicBool,
    /// Tasks pushed but not yet fully processed (drain watches this reach zero).
    pub in_flight: AtomicU64,
}

/// One shard's queue plus its counters and telemetry.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub queue: BoundedQueue<ShardTask>,
    pub counters: ShardCounters,
    pub telemetry: ShardTelemetry,
}

impl ShardState {
    pub(crate) fn new(queue_capacity: usize, telemetry_enabled: bool) -> Self {
        ShardState {
            queue: BoundedQueue::new(queue_capacity),
            counters: ShardCounters::default(),
            telemetry: ShardTelemetry::new(telemetry_enabled),
        }
    }
}

/// What a shard worker hands back at shutdown.
#[derive(Debug)]
pub(crate) struct ShardReport {
    pub audit: AuditLog,
    pub cache_stats: legaliot_ifc::CacheStats,
    pub ac_cache_stats: legaliot_policy::AcCacheStats,
}

/// A `(source, destination)` endpoint-name pair.
type PairKey = (Arc<str>, Arc<str>);

/// Per-pair counters folded into one `FlowSummary` record at shutdown.
#[derive(Debug, Default)]
struct PairSummary {
    allowed: u64,
    denied: u64,
    /// Attributes quenched on this pair so far (also gates the one
    /// `MessageQuenched` record per pair in summarised clone-each mode).
    quenched: u64,
    /// Deliveries of this pair shed by drop-oldest mailbox overflow, counted per
    /// message type (summarised mode only — full mode records each shed individually
    /// instead), folded into one `DeliveryDropped` record per `(pair, type)` at
    /// shutdown. A `BTreeMap` so the shutdown records come out in a deterministic
    /// order (reproducible audit chains).
    dropped: std::collections::BTreeMap<String, u64>,
    first_millis: u64,
    last_millis: u64,
}

/// Counter deltas accumulated over one pop batch, flushed in one go. `Copy` so
/// the supervisor can snapshot it before each unit of work and restore the
/// snapshot if the unit panics half-way — a crashed delivery then contributes
/// exactly one `lost`, and nothing else, to the accounting identity.
#[derive(Debug, Default, Clone, Copy)]
struct BatchCounters {
    delivered: u64,
    denied: u64,
    missing_endpoint: u64,
    cache_hits: u64,
    cache_misses: u64,
    ac_cache_hits: u64,
    ac_cache_misses: u64,
    quenched: u64,
    payload_bytes: u64,
    receiver_enqueued: u64,
    receiver_dropped: u64,
    lost: u64,
}

/// A mailbox hand-off prepared under the directory read lock but performed only
/// after it is released: a Block-policy push may park this worker until the consumer
/// drains, and parking while holding the directory lock would wedge every
/// control-plane write — including the `deregister`/handle-drop that is supposed to
/// release the mailbox.
struct PendingHandOff {
    mailbox: Arc<crate::subscriber::Mailbox>,
    from: Arc<str>,
    to: Arc<str>,
    at_millis: u64,
    item: ReceivedMessage,
}

/// The message type of a delivery that may need loss evidence, held as cheaply
/// as possible until the evidence actually needs the string.
enum LostType {
    Frozen(Arc<FrozenMessage>),
    Named(MessageType),
}

impl LostType {
    fn name(&self) -> String {
        match self {
            LostType::Frozen(message) => message.message_type().to_string(),
            LostType::Named(message_type) => message_type.to_string(),
        }
    }
}

/// What the supervisor knows about the unit of work currently being processed,
/// captured before dispatch so a panic mid-unit can be evidenced as a loss
/// (never a silent drop).
struct InFlight {
    /// `false`: a queued [`ShardTask::Deliver`] (a loss here was never
    /// enforced or counted). `true`: a deferred mailbox hand-off (the delivery
    /// was already enforced and counted `delivered`; only the receiver-side
    /// hand-off is abandoned, so the loss is evidenced but not re-counted).
    hand_off: bool,
    from: Arc<str>,
    to: Arc<str>,
    at_millis: u64,
    message_type: Option<LostType>,
}

/// Cross-restart batch progress, owned by the supervisor (it lives *outside*
/// the `catch_unwind` closure): everything needed to resume — or, once the
/// restart budget is exhausted, to evidence and abandon — the in-flight batch
/// after a worker panic. `in_flight` stays held for the whole batch across any
/// number of restarts, so `drain` never observes a half-processed batch as
/// done.
struct BatchProgress {
    /// The popped batch; processed slots are left as inert tombstones
    /// (`Invalidate { context_hash: 0 }`) so a restart can never re-run a
    /// completed task.
    batch: Vec<ShardTask>,
    /// First unprocessed task in `batch`.
    cursor: usize,
    /// Hand-offs prepared under the directory lock, performed (from the front)
    /// after it is released.
    pending: VecDeque<PendingHandOff>,
    local: BatchCounters,
    /// Tasks popped for the active batch; `in_flight` is decremented by this
    /// once the batch fully completes (or is abandoned).
    popped: u64,
    /// Whether a popped batch is mid-processing (a restart then resumes it
    /// instead of popping a new one).
    active: bool,
    shutdown: bool,
    /// Timestamp of the most recent task, for restart evidence.
    last_millis: u64,
    /// The unit being processed, if its loss can be evidenced.
    unit: Option<InFlight>,
    /// Counter snapshot taken before the in-flight unit, restored on panic so
    /// a half-processed unit contributes nothing but its `lost`.
    saved_counters: BatchCounters,
    /// `pending` length before the in-flight unit (partial pushes of a crashed
    /// delivery are truncated away on restore).
    saved_pending: usize,
}

impl BatchProgress {
    fn new() -> Self {
        BatchProgress {
            batch: Vec::with_capacity(POP_BATCH),
            cursor: 0,
            pending: VecDeque::new(),
            local: BatchCounters::default(),
            popped: 0,
            active: false,
            shutdown: false,
            last_millis: 0,
            unit: None,
            saved_counters: BatchCounters::default(),
            saved_pending: 0,
        }
    }

    /// Marks a freshly popped batch as the active one.
    fn begin(&mut self) {
        self.cursor = 0;
        self.popped = self.batch.len() as u64;
        self.local = BatchCounters::default();
        self.active = true;
    }
}

/// The worker-private enforcement state threaded through delivery processing.
struct WorkerState {
    /// IFC flow-decision cache keyed by (source ctx hash, destination ctx hash).
    cache: DecisionCache,
    /// Contextual-AC decision cache, subscribed to the engine's context store.
    ac_cache: AdmissionCache,
    /// Quench-mask cache keyed by (schema hash, destination ctx hash): the mask is a
    /// pure function of the two, so it is recomputed only when either changes.
    quench_cache: HashMap<(u64, u64), u64>,
    /// Enforcement-time view of the context store, refreshed per batch when stale.
    snapshot: ContextSnapshot,
    appender: BatchedAppender,
    summaries: HashMap<PairKey, PairSummary>,
}

/// Maximum tasks drained from the ingress queue per lock acquisition.
const POP_BATCH: usize = 256;

/// Best-effort extraction of a panic payload's message (the two payload shapes
/// `panic!` actually produces, then a marker for anything exotic).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The supervised worker for shard `index`. Runs until a
/// [`ShardTask::Shutdown`] arrives.
///
/// The enforcement loop itself lives in [`worker_loop`]; this function is the
/// supervisor around it. A panic anywhere inside the loop (injected by a
/// [`failpoint`](crate::failpoint) or real) is caught instead of taking the
/// dataplane down: the half-processed unit's counters are rolled back and the
/// abandoned delivery is evidenced as an [`AuditEvent::DeliveryLost`] record,
/// then the shard's derived state is rebuilt — decision caches cold, audit
/// chain re-anchored on the last hash so verification still passes across the
/// restart, with an [`AuditEvent::ShardRestarted`] record first after the
/// re-anchor — and the same batch resumes where it left off, under a bounded
/// restart budget with exponential backoff
/// ([`DataplaneConfig::restart_budget`] /
/// [`DataplaneConfig::restart_backoff`]). Once the budget is exhausted the
/// shard degrades: everything already accepted is evidenced as lost,
/// publishers routed here fail fast with `ShardUnavailable`, and the worker
/// keeps draining (and evidencing) its queue so `drain` and shutdown never
/// hang on a dead shard.
pub(crate) fn run_worker(
    index: usize,
    shared: Arc<SharedState>,
    config: DataplaneConfig,
) -> ShardReport {
    let store = Arc::clone(&shared.context_store);
    let authority = format!("{}-shard-{index}", shared.name);
    let appender = match shared.persistence[index].as_ref() {
        Some(persistence) => {
            // Durable mode: the chain resumes from the last *persisted* record of
            // the previous incarnation (hash and id recovered from disk), and every
            // record pruned out of the retention window streams to the shard's
            // segment store before being discarded — loss-free by construction.
            let segments = Arc::clone(&persistence.store);
            let sync_on_flush = config.persistence.as_ref().map_or(true, |p| p.sync_on_flush);
            BatchedAppender::over(
                AuditLog::resume(
                    authority.clone(),
                    persistence.resume_anchor,
                    persistence.resume_next_id,
                ),
                config.audit_batch,
            )
            .with_retention(config.audit_retention)
            .with_prune_sink(move |records: &[AuditRecord]| {
                let mut segments = segments.lock();
                for record in records {
                    segments.append(record);
                }
                if sync_on_flush {
                    segments.sync();
                }
            })
        }
        None => BatchedAppender::new(authority.clone(), config.audit_batch)
            .with_retention(config.audit_retention),
    };
    let mut state = WorkerState::fresh(&store, &config, appender);
    let mut progress = BatchProgress::new();
    let mut restarts: u32 = 0;
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            worker_loop(index, &shared, &config, &store, &mut state, &mut progress);
        }));
        match outcome {
            Ok(()) => break,
            Err(payload) => {
                let cause = panic_message(payload.as_ref());
                recover_unit(&mut state, &mut progress, &cause);
                let shard = &shared.shards[index];
                if restarts < config.restart_budget {
                    restarts += 1;
                    shard.counters.restarts.fetch_add(1, Ordering::Relaxed);
                    // Exponential backoff, capped: a crash-looping shard backs
                    // off without stalling drain for long.
                    let exponent = (restarts - 1).min(6);
                    std::thread::sleep(config.restart_backoff.saturating_mul(1u32 << exponent));
                    rebuild_state(&mut state, &store, &config);
                    state.appender.append(
                        AuditEvent::ShardRestarted {
                            shard: authority.clone(),
                            restart: u64::from(restarts),
                            cause,
                        },
                        progress.last_millis,
                    );
                } else {
                    // Budget exhausted: degrade. Set the flag first so
                    // publishers start failing fast, then evidence everything
                    // already accepted and keep draining until Shutdown.
                    shard.counters.degraded.store(true, Ordering::SeqCst);
                    abandon_progress(&mut state, &mut progress, shard);
                    if !progress.shutdown {
                        reject_until_shutdown(&mut state, shard, &mut progress);
                    }
                    break;
                }
            }
        }
    }

    // Emit one FlowSummary per pair (deterministic order for reproducible chains),
    // plus — in summarised mode, where sheds are not recorded individually — one
    // DeliveryDropped total per (pair, message type) that shed mailbox deliveries,
    // so every shed is evidenced exactly once, against its own type, in either
    // audit mode.
    let mut pairs: Vec<(PairKey, PairSummary)> = state.summaries.into_iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    for ((from, to), summary) in pairs {
        if summary.allowed + summary.denied > 0 {
            state.appender.append(
                AuditEvent::FlowSummary {
                    source: from.to_string(),
                    destination: to.to_string(),
                    allowed: summary.allowed,
                    denied: summary.denied,
                    window_start_millis: summary.first_millis,
                    window_end_millis: summary.last_millis,
                },
                summary.last_millis,
            );
        }
        for (message_type, dropped) in summary.dropped {
            state.appender.append(
                AuditEvent::DeliveryDropped {
                    source: from.to_string(),
                    destination: to.to_string(),
                    message_type,
                    dropped,
                },
                summary.last_millis,
            );
        }
    }
    // The worker is done with the store; drop its subscription so a store that
    // outlives the dataplane (`with_context_store`) is not pinned by dead cursors.
    state.ac_cache.detach(&store);
    // `into_log` flushes with the prune sink still installed, so any final
    // retention prune-out reaches disk before the log is frozen.
    let audit = state.appender.into_log();
    if let Some(persistence) = shared.persistence[index].as_ref() {
        // Graceful-exit epilogue: persist the in-memory tail and seal, so the
        // on-disk segments hold the shard's *complete* record stream (pruned
        // prefix + retained tail, in chain order) fsynced before the engine's
        // join observes this worker as done. A store wedged by an IO fault
        // counts these appends as drops instead — visible, never silent.
        let mut segments = persistence.store.lock();
        for record in audit.records() {
            segments.append(record);
        }
        segments.seal();
    }
    ShardReport { audit, cache_stats: state.cache.stats(), ac_cache_stats: state.ac_cache.stats() }
}

impl WorkerState {
    /// Builds the worker's derived state from scratch around the given audit
    /// appender (fresh at spawn; chain-carrying at restart).
    fn fresh(
        store: &Arc<ContextStore>,
        config: &DataplaneConfig,
        appender: BatchedAppender,
    ) -> Self {
        let mut ac_cache = AdmissionCache::with_capacity(config.cache_capacity);
        ac_cache.attach(store);
        WorkerState {
            cache: DecisionCache::with_capacity(config.cache_capacity),
            ac_cache,
            quench_cache: HashMap::new(),
            snapshot: store.snapshot(),
            appender,
            summaries: HashMap::new(),
        }
    }
}

/// Rebuilds the worker's derived state after a panic: decision caches cold
/// (stale entries from the crashed incarnation can never be trusted), a fresh
/// context snapshot, and the audit chain carried forward —
/// [`BatchedAppender::over`] re-anchors on the existing log's last hash, so
/// `verify_chain` still passes across the restart. Pair summaries survive: they
/// are evidence aggregation, not derived cache state, and dropping them would
/// lose already-counted checks from the shutdown `FlowSummary` records.
fn rebuild_state(state: &mut WorkerState, store: &Arc<ContextStore>, config: &DataplaneConfig) {
    let mut appender =
        std::mem::replace(&mut state.appender, BatchedAppender::new(String::new(), 1));
    // Flush *before* detaching the prune sink: the implicit flush inside
    // `into_log` would otherwise prune with no sink installed and records pruned
    // at restart time would never reach the segment store.
    appender.flush();
    let prune_sink = appender.take_prune_sink();
    let mut rebuilt = BatchedAppender::over(appender.into_log(), config.audit_batch)
        .with_retention(config.audit_retention);
    rebuilt.set_prune_sink(prune_sink);
    state.appender = rebuilt;
    state.cache = DecisionCache::with_capacity(config.cache_capacity);
    let mut ac_cache = AdmissionCache::with_capacity(config.cache_capacity);
    ac_cache.attach(store);
    // Release the crashed incarnation's store subscription before dropping it:
    // an abandoned cursor would pin the store's change-history compaction (and
    // so its memory) for the rest of the store's life.
    state.ac_cache.detach(store);
    state.ac_cache = ac_cache;
    state.quench_cache.clear();
    state.snapshot = store.snapshot();
}

/// Rolls back the effects of a panicked unit of work and evidences its loss.
///
/// The counter snapshot restore plus the single `lost` increment is what keeps
/// the accounting identity exact: a crashed delivery contributes either its
/// full set of effects (if it completed) or exactly one `lost` (if it did
/// not), never a partial mixture. A panicked *hand-off* is the at-most-once
/// edge: its delivery was already enforced and counted, so the abandoned push
/// is evidenced but not re-counted.
fn recover_unit(state: &mut WorkerState, progress: &mut BatchProgress, cause: &str) {
    if !progress.active {
        // Panicked between batches (the `shard.loop` site): nothing in flight.
        return;
    }
    progress.local = progress.saved_counters;
    progress.pending.truncate(progress.saved_pending);
    if let Some(unit) = progress.unit.take() {
        let message_type = unit.message_type.as_ref().map(LostType::name);
        if unit.hand_off {
            state.appender.append(
                AuditEvent::DeliveryLost {
                    source: unit.from.to_string(),
                    destination: unit.to.to_string(),
                    message_type,
                    lost: 1,
                    cause: format!("mailbox hand-off abandoned: {cause}"),
                },
                unit.at_millis,
            );
        } else {
            progress.local.lost += 1;
            state.appender.append(
                AuditEvent::DeliveryLost {
                    source: unit.from.to_string(),
                    destination: unit.to.to_string(),
                    message_type,
                    lost: 1,
                    cause: cause.to_string(),
                },
                unit.at_millis,
            );
            // Skip the poisoned task on resume.
            progress.cursor += 1;
        }
    }
    // `unit == None`: the panic hit batch scanning or a non-delivery task.
    // The cursor stays put — the slot holds at worst an inert tombstone, so
    // re-running it is a no-op, and no delivery was lost.
}

/// The enforcement loop proper. Panics propagate to the supervisor in
/// [`run_worker`]; all resumable state lives in `progress`/`state`, which the
/// supervisor owns.
fn worker_loop(
    index: usize,
    shared: &Arc<SharedState>,
    config: &DataplaneConfig,
    store: &Arc<ContextStore>,
    state: &mut WorkerState,
    progress: &mut BatchProgress,
) {
    let shard = &shared.shards[index];
    loop {
        if !progress.active {
            if progress.shutdown {
                return;
            }
            failpoint::inject(&config.failpoints, FailpointSite::ShardLoop);
            shard.queue.pop_batch(&mut progress.batch, POP_BATCH);
            progress.begin();
        }
        run_batch(shared, config, store, state, progress, shard);
        flush_batch(shard, progress);
        if progress.shutdown {
            return;
        }
    }
}

/// Processes (or, after a restart, resumes) the active batch: the task loop
/// under one directory read lock, then the deferred mailbox hand-offs with the
/// lock released.
fn run_batch(
    shared: &Arc<SharedState>,
    config: &DataplaneConfig,
    store: &Arc<ContextStore>,
    state: &mut WorkerState,
    progress: &mut BatchProgress,
    shard: &ShardState,
) {
    let telemetry = &shard.telemetry;
    {
        // One directory read-lock per batch; workers never block a publisher's
        // blocked push while holding it (publishers push outside the lock too),
        // and mailbox hand-offs — which may park this worker under the Block
        // overflow policy — are collected here and performed after the lock is
        // released, so a full mailbox never wedges control-plane writers.
        let remaining = &progress.batch[progress.cursor..];
        let has_deliver = remaining.iter().any(|t| matches!(t, ShardTask::Deliver { .. }));
        let has_payload =
            remaining.iter().any(|t| matches!(t, ShardTask::Deliver { body: Some(_), .. }));
        let directory = if has_deliver {
            // Directory-lock wait is a contention series: one sample per batch,
            // so a writer-heavy control plane shows up as a fat tail here.
            if telemetry.enabled() {
                let requested = Instant::now();
                let guard = shared.directory.read();
                telemetry.record_ns(Stage::DirLockWait, requested.elapsed().as_nanos() as u64);
                Some(guard)
            } else {
                Some(shared.directory.read())
            }
        } else {
            None
        };
        // Payload deliveries evaluate contextual AC: invalidate AC entries whose
        // keys changed, then refresh the enforcement-time context view, once per
        // batch (no-op version checks when the store has not moved). The order is
        // load-bearing: sync consumes the subscription's change feed, so it must
        // run *before* the snapshot refresh — a write landing in between is then
        // seen by the snapshot but not yet consumed, and the next sync
        // conservatively drops the entries it touched. The reverse order could
        // consume a change and then cache decisions from an older snapshot,
        // leaving a stale decision nothing ever invalidates.
        if has_payload {
            let directory = directory.as_deref().expect("payload implies delivery");
            state.ac_cache.sync(store, &directory.access);
            if let Some(fresh) = store.snapshot_if_newer(state.snapshot.version()) {
                state.snapshot = fresh;
            }
        }
        while progress.cursor < progress.batch.len() {
            // Take the task out, leaving an inert tombstone — a panic mid-task
            // can then never re-run (or silently discard) queued work: the
            // supervisor resumes from `cursor`, and the crashed task itself is
            // evidenced from the `unit` descriptor captured below.
            let task = std::mem::replace(
                &mut progress.batch[progress.cursor],
                ShardTask::Invalidate { context_hash: 0 },
            );
            progress.saved_counters = progress.local;
            progress.saved_pending = progress.pending.len();
            match task {
                ShardTask::Deliver { from, to, at_millis, enqueued_ns, body } => {
                    progress.last_millis = at_millis;
                    progress.unit = Some(InFlight {
                        hand_off: false,
                        from: Arc::clone(&from),
                        to: Arc::clone(&to),
                        at_millis,
                        message_type: body.as_ref().map(DeliveryBody::lost_type),
                    });
                    let probe = DeliveryProbe::begin(telemetry, shared.epoch, enqueued_ns);
                    process_delivery(
                        directory.as_deref().expect("lock held when batch has deliveries"),
                        config,
                        state,
                        &mut progress.local,
                        &mut progress.pending,
                        probe,
                        from,
                        to,
                        at_millis,
                        body,
                    );
                }
                ShardTask::Invalidate { context_hash } => {
                    state.cache.invalidate_context(context_hash);
                    state.quench_cache.retain(|(_, dst_hash), _| *dst_hash != context_hash);
                }
                ShardTask::Shutdown => {
                    progress.shutdown = true;
                }
                #[cfg(test)]
                ShardTask::Block(barrier) => {
                    barrier.wait();
                }
            }
            progress.unit = None;
            progress.cursor += 1;
        }
        // Every slot is a tombstone now; reset for the next pop.
        progress.batch.clear();
        progress.cursor = 0;
    }
    // Directory lock released: hand enforced deliveries to their mailboxes. A
    // Block-policy push may park here until the consumer drains (or the mailbox
    // closes) — `in_flight` is still held, so `drain`/`publish` observe the
    // backpressure, while `deregister`/`set_context` remain free to run (and to
    // close the mailbox, which unparks us).
    loop {
        progress.saved_counters = progress.local;
        progress.saved_pending = progress.pending.len();
        let Some(hand_off) = progress.pending.pop_front() else { break };
        progress.unit = Some(InFlight {
            hand_off: true,
            from: Arc::clone(&hand_off.from),
            to: Arc::clone(&hand_off.to),
            at_millis: hand_off.at_millis,
            message_type: Some(received_lost_type(&hand_off.item)),
        });
        complete_hand_off(config, state, &mut progress.local, telemetry, hand_off);
        progress.unit = None;
    }
}

/// The cheapest handle on an enforced delivery's message type, for hand-off
/// loss evidence.
fn received_lost_type(item: &ReceivedMessage) -> LostType {
    match item {
        ReceivedMessage::Frozen(message) => LostType::Frozen(Arc::clone(message)),
        ReceivedMessage::Thawed(message) => LostType::Named(message.message_type.clone()),
    }
}

/// Flushes the completed batch's counters and releases its `in_flight` hold.
fn flush_batch(shard: &ShardState, progress: &mut BatchProgress) {
    let counters = &shard.counters;
    let local = &progress.local;
    counters.delivered.fetch_add(local.delivered, Ordering::Relaxed);
    counters.denied.fetch_add(local.denied, Ordering::Relaxed);
    counters.missing_endpoint.fetch_add(local.missing_endpoint, Ordering::Relaxed);
    counters.cache_hits.fetch_add(local.cache_hits, Ordering::Relaxed);
    counters.cache_misses.fetch_add(local.cache_misses, Ordering::Relaxed);
    counters.ac_cache_hits.fetch_add(local.ac_cache_hits, Ordering::Relaxed);
    counters.ac_cache_misses.fetch_add(local.ac_cache_misses, Ordering::Relaxed);
    counters.quenched.fetch_add(local.quenched, Ordering::Relaxed);
    counters.payload_bytes.fetch_add(local.payload_bytes, Ordering::Relaxed);
    counters.receiver_enqueued.fetch_add(local.receiver_enqueued, Ordering::Relaxed);
    counters.receiver_dropped.fetch_add(local.receiver_dropped, Ordering::Relaxed);
    counters.lost.fetch_add(local.lost, Ordering::Relaxed);
    // Last: drain() may only observe zero once every effect above is visible.
    counters.in_flight.fetch_sub(progress.popped, Ordering::SeqCst);
    progress.active = false;
    progress.popped = 0;
}

/// Degraded-mode turn-down of the active batch: every remaining task and
/// prepared hand-off is evidenced as lost (never silently dropped), then the
/// batch's counters are flushed and its `in_flight` hold released so `drain`
/// completes.
fn abandon_progress(state: &mut WorkerState, progress: &mut BatchProgress, shard: &ShardState) {
    if !progress.active {
        return;
    }
    const CAUSE: &str = "shard degraded: restart budget exhausted";
    while progress.cursor < progress.batch.len() {
        let task = std::mem::replace(
            &mut progress.batch[progress.cursor],
            ShardTask::Invalidate { context_hash: 0 },
        );
        match task {
            ShardTask::Deliver { from, to, at_millis, body, .. } => {
                progress.local.lost += 1;
                state.appender.append(
                    AuditEvent::DeliveryLost {
                        source: from.to_string(),
                        destination: to.to_string(),
                        message_type: body.as_ref().map(|b| b.message_type().to_string()),
                        lost: 1,
                        cause: CAUSE.to_string(),
                    },
                    at_millis,
                );
            }
            ShardTask::Invalidate { .. } => {}
            ShardTask::Shutdown => progress.shutdown = true,
            #[cfg(test)]
            ShardTask::Block(barrier) => {
                barrier.wait();
            }
        }
        progress.cursor += 1;
    }
    progress.batch.clear();
    progress.cursor = 0;
    while let Some(hand_off) = progress.pending.pop_front() {
        // Already enforced and counted delivered; evidence the abandoned
        // receiver-side hand-off without re-counting it.
        state.appender.append(
            AuditEvent::DeliveryLost {
                source: hand_off.from.to_string(),
                destination: hand_off.to.to_string(),
                message_type: Some(received_lost_type(&hand_off.item).name()),
                lost: 1,
                cause: format!("mailbox hand-off abandoned: {CAUSE}"),
            },
            hand_off.at_millis,
        );
    }
    flush_batch(shard, progress);
}

/// The degraded shard's terminal loop: keep popping so publishers that raced
/// the degraded flag — and control-plane broadcasts — are drained (deliveries
/// evidenced as lost, their `in_flight` released) until Shutdown arrives.
/// Without this, `drain()` and `shutdown()` would hang on a dead shard.
fn reject_until_shutdown(
    state: &mut WorkerState,
    shard: &ShardState,
    progress: &mut BatchProgress,
) {
    const CAUSE: &str = "shard degraded: restart budget exhausted";
    loop {
        shard.queue.pop_batch(&mut progress.batch, POP_BATCH);
        let popped = progress.batch.len() as u64;
        let mut lost = 0u64;
        for task in progress.batch.drain(..) {
            match task {
                ShardTask::Deliver { from, to, at_millis, body, .. } => {
                    lost += 1;
                    state.appender.append(
                        AuditEvent::DeliveryLost {
                            source: from.to_string(),
                            destination: to.to_string(),
                            message_type: body.as_ref().map(|b| b.message_type().to_string()),
                            lost: 1,
                            cause: CAUSE.to_string(),
                        },
                        at_millis,
                    );
                }
                ShardTask::Invalidate { .. } => {}
                ShardTask::Shutdown => progress.shutdown = true,
                #[cfg(test)]
                ShardTask::Block(barrier) => {
                    barrier.wait();
                }
            }
        }
        shard.counters.lost.fetch_add(lost, Ordering::Relaxed);
        shard.counters.in_flight.fetch_sub(popped, Ordering::SeqCst);
        if progress.shutdown {
            return;
        }
    }
}

/// Records a denial that carries no flow check (isolation, per-message AC) in the
/// pair summary — in *both* audit modes, so [`AuditDetail::Full`] still evidences
/// refused messages that never reached the IFC stage (its `FlowSummary` records,
/// when present, cover exactly those denials).
fn summarise_denial(
    summaries: &mut HashMap<PairKey, PairSummary>,
    from: Arc<str>,
    to: Arc<str>,
    at_millis: u64,
) {
    let summary = summaries
        .entry((from, to))
        .or_insert_with(|| PairSummary { first_millis: at_millis, ..PairSummary::default() });
    summary.denied += 1;
    summary.last_millis = at_millis;
}

#[allow(clippy::too_many_arguments)]
fn process_delivery(
    directory: &Directory,
    config: &DataplaneConfig,
    state: &mut WorkerState,
    local: &mut BatchCounters,
    pending: &mut VecDeque<PendingHandOff>,
    mut probe: DeliveryProbe<'_>,
    from: Arc<str>,
    to: Arc<str>,
    at_millis: u64,
    body: Option<DeliveryBody>,
) {
    failpoint::inject(&config.failpoints, FailpointSite::ShardProcess);
    // Read both endpoints' *current* contexts: a message is always judged against the
    // state of the world at enforcement time, so an entity's context change is in force
    // for every message behind it in the queue (§8.2.2 re-evaluation).
    let (Some(src), Some(dst)) = (directory.endpoints.get(&*from), directory.endpoints.get(&*to))
    else {
        local.missing_endpoint += 1;
        return;
    };
    if src.component.is_isolated() || dst.component.is_isolated() {
        // No flow check ran, so there is no FlowChecked record (as on the bus, where
        // isolation short-circuits before the flow-check audit); the imposition of
        // isolation itself is audited on the control-plane log, and the denial is
        // still counted in the pair summary so the evidence totals add up.
        probe.lap(Stage::Isolation);
        local.denied += 1;
        summarise_denial(&mut state.summaries, from, to, at_millis);
        return;
    }
    probe.lap(Stage::Isolation);

    // Per-message contextual AC at message-type granularity (payload deliveries only —
    // flow-only tasks were admission-checked at subscribe time). Mirrors the bus's
    // send-time AC check; denials carry no flow check, so they are counted in the
    // pair summary like isolation denials.
    if let Some(body) = &body {
        let message_type = body.message_type();
        let (ac, hit) = if config.cache_ac_decisions {
            state.ac_cache.decide(
                &directory.access,
                &to,
                src.component.principal(),
                Operation::Send,
                Some(message_type),
                &state.snapshot,
                Timestamp(at_millis),
            )
        } else {
            let decision = directory.access.decide(
                &to,
                src.component.principal(),
                Operation::Send,
                Some(message_type),
                &state.snapshot,
                Timestamp(at_millis),
            );
            (decision, false)
        };
        if hit {
            local.ac_cache_hits += 1;
            probe.lap(Stage::AcHit);
        } else {
            local.ac_cache_misses += 1;
            probe.lap(Stage::AcMiss);
        }
        if !ac.is_allowed() {
            local.denied += 1;
            summarise_denial(&mut state.summaries, from, to, at_millis);
            return;
        }
    }

    // IFC over the message's *effective* source context: the sender's current secrecy
    // joined with any message-level secrecy tags (integrity comes from the sender
    // alone, as on the bus). The common case — no extra tags — reuses the endpoint's
    // precomputed context hash, so cache keying costs nothing.
    let extra = body.as_ref().map(DeliveryBody::extra_context);
    let effective: Option<(SecurityContext, u64)> = match extra {
        Some(context) if !context.secrecy().is_empty() => {
            let joined = SecurityContext::new(
                src.component.context().secrecy().union(context.secrecy()),
                src.component.context().integrity().clone(),
            );
            let hash = context_hash64(&joined);
            Some((joined, hash))
        }
        _ => None,
    };
    let (source_context, source_hash) = match &effective {
        Some((context, hash)) => (context, *hash),
        None => (src.component.context(), src.context_hash),
    };

    let (decision, hit): (FlowDecision, bool) = if config.cache_decisions {
        let (decision, hit) = state.cache.check(
            source_context,
            source_hash,
            dst.component.context(),
            dst.context_hash,
        );
        if hit {
            local.cache_hits += 1;
        } else {
            local.cache_misses += 1;
        }
        (decision, hit)
    } else {
        local.cache_misses += 1;
        (can_flow(source_context, dst.component.context()), false)
    };
    probe.lap(Stage::Ifc);

    let denied = decision.is_denied();
    if denied {
        local.denied += 1;
    } else {
        local.delivered += 1;
    }

    // Full mode records everything; summarised mode records denials and the first
    // check of each pair in full, folding repeats into the per-pair summary.
    let full_record = match config.audit_detail {
        AuditDetail::Full => true,
        AuditDetail::Summarised => denied || !hit,
    };
    if full_record {
        failpoint::inject(&config.failpoints, FailpointSite::AuditAppend);
        state.appender.append(
            AuditEvent::FlowChecked {
                source: from.to_string(),
                destination: to.to_string(),
                source_context: source_context.clone(),
                destination_context: dst.component.context().clone(),
                decision,
                data_item: body.as_ref().map(|b| format!("{}@{at_millis}", b.message_type())),
            },
            at_millis,
        );
        probe.lap(Stage::AuditAppend);
    } else {
        probe.skip();
    }

    // Per-attribute source quenching and delivery accounting (allowed payloads only).
    let mut quenched_now = 0u64;
    if !denied {
        if let Some(body) = body {
            quenched_now = deliver_payload(
                directory, config, state, local, pending, &mut probe, &from, &to, dst, at_millis,
                body,
            );
        }
        // End-to-end publish→enforced latency, recorded for allowed messages only
        // (the mailbox hand-off itself is deferred and timed as its own stage).
        probe.finish();
    }

    if config.audit_detail == AuditDetail::Summarised {
        let summary = state
            .summaries
            .entry((from, to))
            .or_insert_with(|| PairSummary { first_millis: at_millis, ..PairSummary::default() });
        if denied {
            summary.denied += 1;
        } else {
            summary.allowed += 1;
        }
        summary.quenched += quenched_now;
        summary.last_millis = at_millis;
    }
}

/// Quenches and delivers an allowed payload; returns how many attributes were
/// quenched on this delivery.
#[allow(clippy::too_many_arguments)]
fn deliver_payload(
    directory: &Directory,
    config: &DataplaneConfig,
    state: &mut WorkerState,
    local: &mut BatchCounters,
    pending: &mut VecDeque<PendingHandOff>,
    probe: &mut DeliveryProbe<'_>,
    from: &Arc<str>,
    to: &Arc<str>,
    dst: &Endpoint,
    at_millis: u64,
    body: DeliveryBody,
) -> u64 {
    // A closed mailbox is skipped with one atomic load — torn-down consumers cost the
    // hot path nothing beyond that check. The push itself happens after the batch
    // releases the directory lock (see `PendingHandOff`).
    let mailbox = dst.mailbox.as_ref().filter(|mailbox| !mailbox.is_closed());
    match body {
        DeliveryBody::Frozen(message) => {
            // The quench mask is a pure function of (schema, destination secrecy):
            // cache it per (schema hash, destination context hash). A destination
            // context change either misses (new hash) or was dropped by the
            // invalidation broadcast, so stale masks never apply.
            let schema = message.schema();
            let key = (schema.schema_hash(), dst.context_hash);
            let (mask, fresh) = match state.quench_cache.get(&key) {
                Some(mask) => (*mask, false),
                None => {
                    if state.quench_cache.len() >= config.cache_capacity {
                        state.quench_cache.clear();
                    }
                    let mask = schema.quench_mask_for(dst.component.context().secrecy());
                    state.quench_cache.insert(key, mask);
                    (mask, true)
                }
            };
            let quenched = u64::from(mask.count_ones());
            if mask != 0 && (config.audit_detail == AuditDetail::Full || fresh) {
                state.appender.append(
                    AuditEvent::MessageQuenched {
                        source: from.to_string(),
                        destination: to.to_string(),
                        message_type: message.message_type().to_string(),
                        attributes: schema.mask_names(mask).map(str::to_string).collect(),
                    },
                    at_millis,
                );
            }
            local.quenched += quenched;
            // Effective bytes moved: quenched attributes' spans never reach a receiver.
            local.payload_bytes += message.byte_len_after_quench(mask) as u64;
            if config.retain_deliveries > 0 {
                // Observation affordance, off the hot path: materialise the quenched
                // view only when retention is enabled.
                push_inbox(dst, config.retain_deliveries, message.quench(mask).thaw());
            }
            if let Some(mailbox) = mailbox {
                // The zero-copy hand-off: an untouched message moves the fan-out's
                // `Arc` straight into the mailbox; quenching shares every buffer and
                // only re-wraps the cleared presence mask.
                let item = if mask == 0 {
                    ReceivedMessage::Frozen(message)
                } else {
                    ReceivedMessage::Frozen(Arc::new(message.quench(mask)))
                };
                pending.push_back(PendingHandOff {
                    mailbox: Arc::clone(mailbox),
                    from: Arc::clone(from),
                    to: Arc::clone(to),
                    at_millis,
                    item,
                });
            }
            probe.lap(Stage::Quench);
            quenched
        }
        DeliveryBody::Cloned(message) => {
            // The naive baseline: recompute the quench mask per delivery (no cache)
            // and produce a quenched deep clone, exactly as the synchronous bus does.
            let mut names: Vec<&str> = Vec::new();
            if let Some(schema) = directory.schemas.get(&message.message_type) {
                let mask = schema.quench_mask_for(dst.component.context().secrecy());
                names.extend(schema.mask_names(mask));
            }
            let delivered = message.quenched(names.iter().copied());
            let quenched = names.len() as u64;
            let first_of_pair = state
                .summaries
                .get(&(Arc::clone(from), Arc::clone(to)))
                .map_or(true, |summary| summary.quenched == 0);
            if quenched > 0 && (config.audit_detail == AuditDetail::Full || first_of_pair) {
                state.appender.append(
                    AuditEvent::MessageQuenched {
                        source: from.to_string(),
                        destination: to.to_string(),
                        message_type: message.message_type.to_string(),
                        attributes: names.into_iter().map(String::from).collect(),
                    },
                    at_millis,
                );
            }
            local.quenched += quenched;
            local.payload_bytes += encoded_payload_len(&delivered) as u64;
            let mut delivered = Some(delivered);
            if config.retain_deliveries > 0 {
                let retained = if mailbox.is_some() {
                    delivered.as_ref().expect("not yet taken").clone()
                } else {
                    delivered.take().expect("not yet taken")
                };
                push_inbox(dst, config.retain_deliveries, retained);
            }
            if let Some(mailbox) = mailbox {
                let body = delivered.take().expect("kept for the mailbox");
                pending.push_back(PendingHandOff {
                    mailbox: Arc::clone(mailbox),
                    from: Arc::clone(from),
                    to: Arc::clone(to),
                    at_millis,
                    item: ReceivedMessage::Thawed(Box::new(body)),
                });
            }
            probe.lap(Stage::Quench);
            quenched
        }
    }
}

/// Performs a deferred mailbox hand-off (the directory lock is no longer held) and
/// evidences drop-oldest sheds, attributing the shed (oldest) delivery to *its own*
/// source and message type. The two audit modes partition the evidence — full mode
/// records each shed individually as it happens; summarised mode folds sheds into one
/// per-pair `DeliveryDropped` total emitted at shutdown — so summing `dropped` over
/// all records counts every shed delivery exactly once in either mode.
fn complete_hand_off(
    config: &DataplaneConfig,
    state: &mut WorkerState,
    local: &mut BatchCounters,
    telemetry: &ShardTelemetry,
    hand_off: PendingHandOff,
) {
    failpoint::inject(&config.failpoints, FailpointSite::MailboxHandOff);
    let PendingHandOff { mailbox, from, to, at_millis, item } = hand_off;
    // The hand-off span is the whole push (including any Block stall); the stall
    // histogram additionally isolates just the parked portion, one sample per push
    // that actually waited.
    let started = telemetry.enabled().then(Instant::now);
    let stall = started.map(|_| telemetry.stage_histogram(Stage::BlockStall));
    let outcome = mailbox.push(item, stall);
    if let Some(started) = started {
        telemetry.record_ns(Stage::Handoff, started.elapsed().as_nanos() as u64);
    }
    match outcome {
        MailboxPush::Enqueued => local.receiver_enqueued += 1,
        MailboxPush::DroppedOldest(shed) => {
            local.receiver_enqueued += 1;
            local.receiver_dropped += 1;
            let source: Arc<str> =
                if shed.sender() == &*from { from } else { Arc::from(shed.sender()) };
            match config.audit_detail {
                AuditDetail::Full => {
                    state.appender.append(
                        AuditEvent::DeliveryDropped {
                            source: source.to_string(),
                            destination: to.to_string(),
                            message_type: shed.message_type().to_string(),
                            dropped: 1,
                        },
                        at_millis,
                    );
                }
                AuditDetail::Summarised => {
                    let summary = state.summaries.entry((source, to)).or_insert_with(|| {
                        PairSummary { first_millis: at_millis, ..PairSummary::default() }
                    });
                    *summary.dropped.entry(shed.message_type().to_string()).or_default() += 1;
                    summary.last_millis = summary.last_millis.max(at_millis);
                }
            }
        }
        MailboxPush::Closed => {}
    }
}

fn push_inbox(dst: &Endpoint, capacity: usize, message: Message) {
    let mut inbox = dst.inbox.lock();
    if inbox.len() >= capacity {
        inbox.pop_front();
    }
    inbox.push_back(message);
}
