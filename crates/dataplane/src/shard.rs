//! Shard worker: the per-thread enforcement loop.
//!
//! Each shard owns an ingress [`BoundedQueue`](crate::queue::BoundedQueue) of
//! [`ShardTask`]s, a private [`DecisionCache`] (no cross-shard locking on the hot path)
//! and a private [`BatchedAppender`] writing a per-shard hash-chained audit log.
//! Components are assigned to shards by a stable hash of their name; a message is
//! enforced on the *destination's* shard, so one overloaded subscriber backpressures
//! only its own shard.
//!
//! The loop amortises synchronisation over pop batches: one directory read-lock
//! acquisition, one `in_flight` decrement and one flush of the statistics counters per
//! batch of up to [`POP_BATCH`] tasks, rather than per message.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use legaliot_audit::{AuditEvent, AuditLog, BatchedAppender};
use legaliot_ifc::{can_flow, DecisionCache};

use crate::engine::{AuditDetail, DataplaneConfig, Directory, SharedState};
use crate::queue::BoundedQueue;

/// Work items delivered to a shard's ingress queue.
#[derive(Debug)]
pub(crate) enum ShardTask {
    /// Enforce and deliver one message `from → to`.
    Deliver {
        /// Source endpoint name.
        from: Arc<str>,
        /// Destination endpoint name (owned by this shard).
        to: Arc<str>,
        /// Simulated send time in milliseconds.
        at_millis: u64,
    },
    /// Drop every cached decision involving this context hash (an entity changed
    /// context — §8.2.2 re-evaluation).
    Invalidate {
        /// The superseded context's stable hash.
        context_hash: u64,
    },
    /// Flush audit buffers and exit the worker loop.
    Shutdown,
    /// Test hook: park the worker on a barrier so tests can fill the queue
    /// deterministically.
    #[cfg(test)]
    Block(Arc<std::sync::Barrier>),
}

/// Live per-shard counters, updated by the worker and readable from the engine.
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub delivered: AtomicU64,
    pub denied: AtomicU64,
    pub missing_endpoint: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    /// Tasks pushed but not yet fully processed (drain watches this reach zero).
    pub in_flight: AtomicU64,
}

/// One shard's queue plus its counters.
#[derive(Debug)]
pub(crate) struct ShardState {
    pub queue: BoundedQueue<ShardTask>,
    pub counters: ShardCounters,
}

impl ShardState {
    pub(crate) fn new(queue_capacity: usize) -> Self {
        ShardState { queue: BoundedQueue::new(queue_capacity), counters: ShardCounters::default() }
    }
}

/// What a shard worker hands back at shutdown.
#[derive(Debug)]
pub(crate) struct ShardReport {
    pub audit: AuditLog,
    pub cache_stats: legaliot_ifc::CacheStats,
}

/// A `(source, destination)` endpoint-name pair.
type PairKey = (Arc<str>, Arc<str>);

/// Per-pair counters folded into one `FlowSummary` record at shutdown.
#[derive(Debug, Default)]
struct PairSummary {
    allowed: u64,
    denied: u64,
    first_millis: u64,
    last_millis: u64,
}

/// Counter deltas accumulated over one pop batch, flushed in one go.
#[derive(Debug, Default)]
struct BatchCounters {
    delivered: u64,
    denied: u64,
    missing_endpoint: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Maximum tasks drained from the ingress queue per lock acquisition.
const POP_BATCH: usize = 256;

/// The worker loop for shard `index`. Runs until a [`ShardTask::Shutdown`] arrives.
pub(crate) fn run_worker(
    index: usize,
    shared: Arc<SharedState>,
    config: DataplaneConfig,
) -> ShardReport {
    let mut cache = DecisionCache::with_capacity(config.cache_capacity);
    let mut appender =
        BatchedAppender::new(format!("{}-shard-{index}", shared.name), config.audit_batch)
            .with_retention(config.audit_retention);
    let mut summaries: HashMap<PairKey, PairSummary> = HashMap::new();
    let mut batch: Vec<ShardTask> = Vec::with_capacity(POP_BATCH);

    let shard = &shared.shards[index];
    let mut shutdown = false;
    while !shutdown {
        shard.queue.pop_batch(&mut batch, POP_BATCH);
        let mut processed = 0u64;
        let mut local = BatchCounters::default();
        {
            // One directory read-lock per batch; workers never block a publisher's
            // blocked push while holding it (publishers push outside the lock too).
            let directory = if batch.iter().any(|t| matches!(t, ShardTask::Deliver { .. })) {
                Some(shared.directory.read())
            } else {
                None
            };
            for task in batch.drain(..) {
                processed += 1;
                match task {
                    ShardTask::Deliver { from, to, at_millis } => {
                        process_delivery(
                            directory.as_deref().expect("lock held when batch has deliveries"),
                            &config,
                            &mut cache,
                            &mut appender,
                            &mut summaries,
                            &mut local,
                            from,
                            to,
                            at_millis,
                        );
                    }
                    ShardTask::Invalidate { context_hash } => {
                        cache.invalidate_context(context_hash);
                    }
                    ShardTask::Shutdown => {
                        shutdown = true;
                    }
                    #[cfg(test)]
                    ShardTask::Block(barrier) => {
                        barrier.wait();
                    }
                }
            }
        }
        let counters = &shard.counters;
        counters.delivered.fetch_add(local.delivered, Ordering::Relaxed);
        counters.denied.fetch_add(local.denied, Ordering::Relaxed);
        counters.missing_endpoint.fetch_add(local.missing_endpoint, Ordering::Relaxed);
        counters.cache_hits.fetch_add(local.cache_hits, Ordering::Relaxed);
        counters.cache_misses.fetch_add(local.cache_misses, Ordering::Relaxed);
        // Last: drain() may only observe zero once every effect above is visible.
        counters.in_flight.fetch_sub(processed, Ordering::SeqCst);
    }

    // Emit one FlowSummary per pair (deterministic order for reproducible chains).
    let mut pairs: Vec<(PairKey, PairSummary)> = summaries.into_iter().collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    for ((from, to), summary) in pairs {
        appender.append(
            AuditEvent::FlowSummary {
                source: from.to_string(),
                destination: to.to_string(),
                allowed: summary.allowed,
                denied: summary.denied,
                window_start_millis: summary.first_millis,
                window_end_millis: summary.last_millis,
            },
            summary.last_millis,
        );
    }
    ShardReport { audit: appender.into_log(), cache_stats: cache.stats() }
}

#[allow(clippy::too_many_arguments)]
fn process_delivery(
    directory: &Directory,
    config: &DataplaneConfig,
    cache: &mut DecisionCache,
    appender: &mut BatchedAppender,
    summaries: &mut HashMap<PairKey, PairSummary>,
    local: &mut BatchCounters,
    from: Arc<str>,
    to: Arc<str>,
    at_millis: u64,
) {
    // Read both endpoints' *current* contexts: a message is always judged against the
    // state of the world at enforcement time, so an entity's context change is in force
    // for every message behind it in the queue (§8.2.2 re-evaluation).
    let (Some(src), Some(dst)) = (directory.endpoints.get(&*from), directory.endpoints.get(&*to))
    else {
        local.missing_endpoint += 1;
        return;
    };
    if src.component.is_isolated() || dst.component.is_isolated() {
        // No flow check ran, so there is no FlowChecked record (as on the bus, where
        // isolation short-circuits before the flow-check audit); the imposition of
        // isolation itself is audited on the control-plane log, and the denial is
        // still counted in the pair summary so the evidence totals add up.
        local.denied += 1;
        if config.audit_detail == AuditDetail::Summarised {
            let summary = summaries.entry((from, to)).or_insert_with(|| PairSummary {
                first_millis: at_millis,
                ..PairSummary::default()
            });
            summary.denied += 1;
            summary.last_millis = at_millis;
        }
        return;
    }

    let (decision, hit) = if config.cache_decisions {
        let (decision, hit) = cache.check(
            src.component.context(),
            src.context_hash,
            dst.component.context(),
            dst.context_hash,
        );
        if hit {
            local.cache_hits += 1;
        } else {
            local.cache_misses += 1;
        }
        (decision, hit)
    } else {
        local.cache_misses += 1;
        (can_flow(src.component.context(), dst.component.context()), false)
    };

    let denied = decision.is_denied();
    if denied {
        local.denied += 1;
    } else {
        local.delivered += 1;
    }

    // Full mode records everything; summarised mode records denials and the first
    // check of each pair in full, folding repeats into the per-pair summary.
    let full_record = match config.audit_detail {
        AuditDetail::Full => true,
        AuditDetail::Summarised => denied || !hit,
    };
    if full_record {
        appender.append(
            AuditEvent::FlowChecked {
                source: from.to_string(),
                destination: to.to_string(),
                source_context: src.component.context().clone(),
                destination_context: dst.component.context().clone(),
                decision,
                data_item: None,
            },
            at_millis,
        );
    }
    if config.audit_detail == AuditDetail::Summarised {
        let summary = summaries
            .entry((from, to))
            .or_insert_with(|| PairSummary { first_millis: at_millis, ..PairSummary::default() });
        if denied {
            summary.denied += 1;
        } else {
            summary.allowed += 1;
        }
        summary.last_millis = at_millis;
    }
}
