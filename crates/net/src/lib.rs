//! # legaliot-net
//!
//! A deterministic, simulated distributed-systems substrate for the reproduction: nodes
//! grouped into administrative domains, links with latency and reachability, gateways
//! fronting subsystems (§2.1 of Singh et al., Middleware 2016), and in-order message
//! delivery driven by a simulated clock.
//!
//! The paper's cross-machine enforcement (Fig. 9) happens at *channel establishment* on
//! top of a messaging substrate; the substrate itself only needs to deliver bytes
//! between named endpoints with controllable topology and failures. That is what this
//! crate provides — real sockets would add nondeterminism without exercising any
//! additional logic from the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sim;

pub use sim::{AdminDomain, Delivery, Link, NetError, Network, NodeId, NodeInfo, NodeKind, Wire};
