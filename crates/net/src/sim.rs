//! The network simulator: nodes, domains, links, gateways and message delivery.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Identifier of a node in the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The role a node plays in the IoT architecture (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A constrained device: sensor or actuator.
    Device,
    /// A gateway/hub fronting a subsystem (§2.1).
    Gateway,
    /// A cloud or edge service node (§2.2).
    Cloud,
    /// A user-facing endpoint (phone, workstation).
    Endpoint,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Device => "device",
            NodeKind::Gateway => "gateway",
            NodeKind::Cloud => "cloud",
            NodeKind::Endpoint => "endpoint",
        };
        f.write_str(s)
    }
}

/// An administrative domain: a set of nodes under one party's management, optionally
/// fronted by a gateway (subsystems behind firewalls, proprietary sensor networks,
/// workplaces — §2.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdminDomain {
    /// The domain's name (e.g. `hospital`, `ann-home`, `city-council`).
    pub name: String,
    /// Nodes belonging to the domain.
    pub members: BTreeSet<NodeId>,
    /// The gateway node through which external traffic must pass, if the domain is a
    /// closed subsystem.
    pub gateway: Option<NodeId>,
}

/// Static information about a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// The node's id.
    pub id: NodeId,
    /// The node's name (unique in the network).
    pub name: String,
    /// Its architectural role.
    pub kind: NodeKind,
    /// The administrative domain it belongs to.
    pub domain: String,
    /// Whether the node is currently up.
    pub up: bool,
}

/// A directed link between two nodes with a latency in simulated milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// One-way latency in milliseconds.
    pub latency_millis: u64,
}

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wire {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Opaque payload (the middleware layers its typed messages on top).
    pub payload: Bytes,
    /// Simulated send time.
    pub sent_at_millis: u64,
    /// Simulated delivery time.
    pub deliver_at_millis: u64,
}

/// A delivered message as seen by the receiving node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The sender.
    pub from: NodeId,
    /// The payload.
    pub payload: Bytes,
    /// When it was delivered (simulated time).
    pub at_millis: u64,
}

/// Errors raised by the network simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The referenced node does not exist.
    UnknownNode {
        /// The offending id.
        id: NodeId,
    },
    /// There is no (transitive) route between the two nodes.
    NoRoute {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// The source or destination node is down.
    NodeDown {
        /// The node that is down.
        id: NodeId,
    },
    /// A node with this name already exists.
    DuplicateName {
        /// The duplicate name.
        name: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode { id } => write!(f, "unknown node {id}"),
            NetError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            NetError::NodeDown { id } => write!(f, "node {id} is down"),
            NetError::DuplicateName { name } => write!(f, "a node named `{name}` already exists"),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated network: topology plus an event queue of in-flight messages, advanced
/// by an explicit simulated clock.
#[derive(Debug, Default)]
pub struct Network {
    nodes: Vec<NodeInfo>,
    names: BTreeMap<String, NodeId>,
    links: Vec<Link>,
    domains: BTreeMap<String, AdminDomain>,
    in_flight: VecDeque<Wire>,
    mailboxes: BTreeMap<NodeId, Vec<Delivery>>,
    now_millis: u64,
    /// Count of messages delivered so far (for benchmarks).
    delivered_count: u64,
}

impl Network {
    /// Creates an empty network at simulated time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated time in milliseconds.
    pub fn now_millis(&self) -> u64 {
        self.now_millis
    }

    /// Adds a node to a domain, creating the domain if needed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateName`] if a node with this name exists already.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: NodeKind,
        domain: impl Into<String>,
    ) -> Result<NodeId, NetError> {
        let name = name.into();
        if self.names.contains_key(&name) {
            return Err(NetError::DuplicateName { name });
        }
        let id = NodeId(self.nodes.len() as u32);
        let domain = domain.into();
        self.nodes.push(NodeInfo {
            id,
            name: name.clone(),
            kind,
            domain: domain.clone(),
            up: true,
        });
        self.names.insert(name, id);
        self.mailboxes.insert(id, Vec::new());
        let entry = self.domains.entry(domain.clone()).or_insert(AdminDomain {
            name: domain,
            members: BTreeSet::new(),
            gateway: None,
        });
        entry.members.insert(id);
        if kind == NodeKind::Gateway && entry.gateway.is_none() {
            entry.gateway = Some(id);
        }
        Ok(id)
    }

    /// Adds a bidirectional link between two nodes.
    pub fn link(&mut self, a: NodeId, b: NodeId, latency_millis: u64) -> Result<(), NetError> {
        self.check_node(a)?;
        self.check_node(b)?;
        self.links.push(Link { from: a, to: b, latency_millis });
        self.links.push(Link { from: b, to: a, latency_millis });
        Ok(())
    }

    fn check_node(&self, id: NodeId) -> Result<&NodeInfo, NetError> {
        self.nodes.get(id.0 as usize).ok_or(NetError::UnknownNode { id })
    }

    /// Looks up a node id by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Node info by id.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        self.nodes.get(id.0 as usize)
    }

    /// All nodes.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// The administrative domains.
    pub fn domains(&self) -> impl Iterator<Item = &AdminDomain> + '_ {
        self.domains.values()
    }

    /// The domain a node belongs to.
    pub fn domain_of(&self, id: NodeId) -> Option<&AdminDomain> {
        self.node(id).and_then(|n| self.domains.get(&n.domain))
    }

    /// Whether two nodes are in the same administrative domain.
    pub fn same_domain(&self, a: NodeId, b: NodeId) -> bool {
        match (self.node(a), self.node(b)) {
            (Some(na), Some(nb)) => na.domain == nb.domain,
            _ => false,
        }
    }

    /// Marks a node as down (crash) or up (recovery).
    pub fn set_node_up(&mut self, id: NodeId, up: bool) -> Result<(), NetError> {
        self.check_node(id)?;
        self.nodes[id.0 as usize].up = up;
        Ok(())
    }

    /// Total messages delivered since the start of the simulation.
    pub fn delivered_count(&self) -> u64 {
        self.delivered_count
    }

    /// Computes the shortest-latency route between two nodes (Dijkstra over link
    /// latencies), returning total latency. Only nodes that are up are traversed.
    pub fn route_latency(&self, from: NodeId, to: NodeId) -> Result<u64, NetError> {
        let from_info = self.check_node(from)?;
        let to_info = self.check_node(to)?;
        if !from_info.up {
            return Err(NetError::NodeDown { id: from });
        }
        if !to_info.up {
            return Err(NetError::NodeDown { id: to });
        }
        let mut dist: BTreeMap<NodeId, u64> = BTreeMap::new();
        dist.insert(from, 0);
        let mut frontier: BTreeSet<(u64, NodeId)> = BTreeSet::new();
        frontier.insert((0, from));
        while let Some((d, n)) = frontier.iter().next().copied() {
            frontier.remove(&(d, n));
            if n == to {
                return Ok(d);
            }
            for link in self.links.iter().filter(|l| l.from == n) {
                let target = self.node(link.to).expect("link target exists");
                if !target.up {
                    continue;
                }
                let nd = d + link.latency_millis;
                if dist.get(&link.to).map_or(true, |old| nd < *old) {
                    if let Some(old) = dist.insert(link.to, nd) {
                        frontier.remove(&(old, link.to));
                    }
                    frontier.insert((nd, link.to));
                }
            }
        }
        Err(NetError::NoRoute { from, to })
    }

    /// Sends a payload from one node to another; it will be delivered after the routed
    /// latency when the clock advances far enough.
    pub fn send(
        &mut self,
        from: NodeId,
        to: NodeId,
        payload: impl Into<Bytes>,
    ) -> Result<(), NetError> {
        let latency = self.route_latency(from, to)?;
        let wire = Wire {
            from,
            to,
            payload: payload.into(),
            sent_at_millis: self.now_millis,
            deliver_at_millis: self.now_millis + latency,
        };
        self.in_flight.push_back(wire);
        Ok(())
    }

    /// Advances simulated time by `millis`, delivering every in-flight message whose
    /// delivery time has arrived (to nodes that are still up). Returns the number of
    /// messages delivered on this tick.
    pub fn advance(&mut self, millis: u64) -> usize {
        self.now_millis += millis;
        let now = self.now_millis;
        let mut delivered = 0;
        let mut remaining = VecDeque::new();
        while let Some(wire) = self.in_flight.pop_front() {
            if wire.deliver_at_millis <= now {
                let up = self.node(wire.to).map(|n| n.up).unwrap_or(false);
                if up {
                    self.mailboxes.entry(wire.to).or_default().push(Delivery {
                        from: wire.from,
                        payload: wire.payload,
                        at_millis: wire.deliver_at_millis,
                    });
                    delivered += 1;
                    self.delivered_count += 1;
                }
                // Messages to downed nodes are dropped (the middleware retries).
            } else {
                remaining.push_back(wire);
            }
        }
        self.in_flight = remaining;
        delivered
    }

    /// Drains the mailbox of a node.
    pub fn receive(&mut self, node: NodeId) -> Vec<Delivery> {
        self.mailboxes.get_mut(&node).map(std::mem::take).unwrap_or_default()
    }

    /// Number of messages currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_network() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let sensor = net.add_node("ann-sensor", NodeKind::Device, "ann-home").unwrap();
        let gateway = net.add_node("ann-gateway", NodeKind::Gateway, "ann-home").unwrap();
        let cloud = net.add_node("hospital-cloud", NodeKind::Cloud, "hospital").unwrap();
        net.link(sensor, gateway, 5).unwrap();
        net.link(gateway, cloud, 20).unwrap();
        (net, sensor, gateway, cloud)
    }

    #[test]
    fn add_nodes_and_domains() {
        let (net, sensor, gateway, cloud) = small_network();
        assert_eq!(net.nodes().len(), 3);
        assert_eq!(net.node_by_name("ann-sensor"), Some(sensor));
        assert!(net.same_domain(sensor, gateway));
        assert!(!net.same_domain(sensor, cloud));
        let home = net.domain_of(sensor).unwrap();
        assert_eq!(home.gateway, Some(gateway));
        assert_eq!(home.members.len(), 2);
        assert_eq!(net.domains().count(), 2);
        assert_eq!(net.node(sensor).unwrap().kind, NodeKind::Device);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut net = Network::new();
        net.add_node("a", NodeKind::Device, "d").unwrap();
        let err = net.add_node("a", NodeKind::Cloud, "d").unwrap_err();
        assert!(matches!(err, NetError::DuplicateName { .. }));
    }

    #[test]
    fn routing_uses_shortest_latency() {
        let (mut net, sensor, gateway, cloud) = small_network();
        assert_eq!(net.route_latency(sensor, cloud).unwrap(), 25);
        assert_eq!(net.route_latency(sensor, gateway).unwrap(), 5);
        assert_eq!(net.route_latency(sensor, sensor).unwrap(), 0);
        // Add a faster direct path; routing should prefer it.
        net.link(sensor, cloud, 10).unwrap();
        assert_eq!(net.route_latency(sensor, cloud).unwrap(), 10);
    }

    #[test]
    fn unreachable_and_down_nodes() {
        let mut net = Network::new();
        let a = net.add_node("a", NodeKind::Device, "d1").unwrap();
        let b = net.add_node("b", NodeKind::Device, "d2").unwrap();
        assert!(matches!(net.route_latency(a, b), Err(NetError::NoRoute { .. })));
        net.link(a, b, 1).unwrap();
        assert!(net.route_latency(a, b).is_ok());
        net.set_node_up(b, false).unwrap();
        assert!(matches!(net.route_latency(a, b), Err(NetError::NodeDown { .. })));
        assert!(matches!(net.route_latency(NodeId(99), a), Err(NetError::UnknownNode { .. })));
    }

    #[test]
    fn send_and_deliver_respects_latency() {
        let (mut net, sensor, _gateway, cloud) = small_network();
        net.send(sensor, cloud, Bytes::from_static(b"reading")).unwrap();
        assert_eq!(net.in_flight_count(), 1);
        // Not delivered before the 25ms route latency has elapsed.
        assert_eq!(net.advance(10), 0);
        assert!(net.receive(cloud).is_empty());
        assert_eq!(net.advance(20), 1);
        let inbox = net.receive(cloud);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].from, sensor);
        assert_eq!(inbox[0].payload, Bytes::from_static(b"reading"));
        assert_eq!(inbox[0].at_millis, 25);
        assert_eq!(net.delivered_count(), 1);
        // Mailbox is drained.
        assert!(net.receive(cloud).is_empty());
    }

    #[test]
    fn messages_to_downed_nodes_are_dropped() {
        let (mut net, sensor, _gateway, cloud) = small_network();
        net.send(sensor, cloud, Bytes::from_static(b"x")).unwrap();
        net.set_node_up(cloud, false).unwrap();
        assert_eq!(net.advance(100), 0);
        net.set_node_up(cloud, true).unwrap();
        assert!(net.receive(cloud).is_empty());
        assert_eq!(net.delivered_count(), 0);
    }

    #[test]
    fn route_through_gateway_is_transitive() {
        // Devices in a closed subsystem reach the cloud only via the gateway.
        let (net, sensor, gateway, cloud) = small_network();
        let via_gateway = net.route_latency(sensor, gateway).unwrap()
            + net.route_latency(gateway, cloud).unwrap();
        assert_eq!(net.route_latency(sensor, cloud).unwrap(), via_gateway);
    }

    #[test]
    fn error_display() {
        assert!(NetError::UnknownNode { id: NodeId(3) }.to_string().contains("node3"));
        assert!(NetError::NoRoute { from: NodeId(0), to: NodeId(1) }
            .to_string()
            .contains("no route"));
        assert!(NetError::NodeDown { id: NodeId(2) }.to_string().contains("down"));
        assert!(NetError::DuplicateName { name: "x".into() }.to_string().contains("x"));
        assert_eq!(NodeKind::Gateway.to_string(), "gateway");
    }

    proptest! {
        /// Every sent message is delivered exactly once after enough time passes (all
        /// nodes up, connected line topology).
        #[test]
        fn prop_all_messages_delivered(count in 1usize..30, latency in 1u64..20) {
            let mut net = Network::new();
            let a = net.add_node("a", NodeKind::Device, "d").unwrap();
            let b = net.add_node("b", NodeKind::Cloud, "d").unwrap();
            net.link(a, b, latency).unwrap();
            for i in 0..count {
                net.send(a, b, Bytes::from(vec![i as u8])).unwrap();
            }
            net.advance(latency + 1);
            let inbox = net.receive(b);
            prop_assert_eq!(inbox.len(), count);
            prop_assert_eq!(net.in_flight_count(), 0);
        }

        /// Route latency is symmetric for symmetric topologies.
        #[test]
        fn prop_symmetric_routing(lat1 in 1u64..50, lat2 in 1u64..50) {
            let mut net = Network::new();
            let a = net.add_node("a", NodeKind::Device, "d").unwrap();
            let g = net.add_node("g", NodeKind::Gateway, "d").unwrap();
            let c = net.add_node("c", NodeKind::Cloud, "e").unwrap();
            net.link(a, g, lat1).unwrap();
            net.link(g, c, lat2).unwrap();
            prop_assert_eq!(
                net.route_latency(a, c).unwrap(),
                net.route_latency(c, a).unwrap()
            );
        }
    }
}
