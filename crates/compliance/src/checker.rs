//! Compliance checking over audit evidence, and liability apportionment.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_audit::{AuditEvent, AuditLog, AuditRecord, NodeKind, ProvenanceGraph};

use crate::regulation::{Obligation, RegulationSet};

/// A detected violation of an obligation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The obligation violated (its stable id).
    pub obligation: String,
    /// Human-readable description of what happened.
    pub description: String,
    /// The audit record (timestamp in ms) that evidences the violation, if applicable.
    pub evidence_at_millis: Option<u64>,
    /// Entities involved.
    pub involved: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.obligation, self.description)
    }
}

/// The result of a compliance check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComplianceReport {
    /// The regulation checked.
    pub regulation: String,
    /// Violations found (empty means demonstrably compliant w.r.t. the evidence).
    pub violations: Vec<Violation>,
    /// Number of audit records examined.
    pub records_examined: usize,
    /// Number of obligations checked.
    pub obligations_checked: usize,
    /// Whether the audit chains backing the evidence verified as tamper-free.
    pub evidence_intact: bool,
}

impl ComplianceReport {
    /// Whether no violations were found and the evidence is intact.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty() && self.evidence_intact
    }
}

/// Apportionment of responsibility for a violation, derived from the provenance graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiabilityReport {
    /// The data item at the centre of the investigation.
    pub data_item: String,
    /// Agents that controlled processes which touched the item (or its derivatives),
    /// in deterministic order — the candidates amongst whom liability is apportioned.
    pub responsible_agents: Vec<String>,
    /// Processes that handled the item or its derivatives.
    pub involved_processes: Vec<String>,
}

/// Checks obligations against audit evidence (merged per-node logs + provenance graph).
#[derive(Debug, Clone)]
pub struct ComplianceChecker {
    regulation: RegulationSet,
}

impl ComplianceChecker {
    /// Creates a checker for the given regulation set.
    pub fn new(regulation: RegulationSet) -> Self {
        ComplianceChecker { regulation }
    }

    /// The regulation being checked.
    pub fn regulation(&self) -> &RegulationSet {
        &self.regulation
    }

    /// Runs every obligation's check against the supplied logs and provenance graph.
    ///
    /// `component_regions` maps component names to the region they are located in
    /// (derived from node domains / attested locations) for residency checks.
    /// `consent_given` lists subjects whose consent is recorded.
    /// `notified_authorities` lists authorities that received breach notifications.
    pub fn check(
        &self,
        logs: &[&AuditLog],
        provenance: &ProvenanceGraph,
        component_regions: &[(String, String)],
        consent_given: &[String],
        notified_authorities: &[String],
    ) -> ComplianceReport {
        let timeline = AuditLog::merged_timeline(logs.iter().copied());
        let evidence_intact = logs.iter().all(|l| l.verify_chain().is_intact());
        let mut violations = Vec::new();
        for obligation in &self.regulation.obligations {
            violations.extend(self.check_obligation(
                obligation,
                &timeline,
                provenance,
                component_regions,
                consent_given,
                notified_authorities,
            ));
        }
        ComplianceReport {
            regulation: self.regulation.name.clone(),
            violations,
            records_examined: timeline.len(),
            obligations_checked: self.regulation.obligations.len(),
            evidence_intact,
        }
    }

    fn check_obligation(
        &self,
        obligation: &Obligation,
        timeline: &[AuditRecord],
        provenance: &ProvenanceGraph,
        component_regions: &[(String, String)],
        consent_given: &[String],
        notified_authorities: &[String],
    ) -> Vec<Violation> {
        match obligation {
            Obligation::ConsentRequired { data_tag, subject } => {
                if consent_given.iter().any(|s| s == subject) {
                    return Vec::new();
                }
                // Without consent, any *allowed* flow of the tagged data is a violation.
                timeline
                    .iter()
                    .filter_map(|r| match &r.event {
                        AuditEvent::FlowChecked {
                            source,
                            destination,
                            source_context,
                            decision,
                            ..
                        } if decision.is_allowed()
                            && source_context.secrecy().contains(data_tag) =>
                        {
                            Some(Violation {
                                obligation: obligation.id(),
                                description: format!(
                                    "flow {source} -> {destination} processed `{data_tag}` data without {subject}'s consent"
                                ),
                                evidence_at_millis: Some(r.at_millis),
                                involved: vec![source.clone(), destination.clone()],
                            })
                        }
                        _ => None,
                    })
                    .collect()
            }
            Obligation::GeoResidency { data_tag, region } => {
                let outside: BTreeSet<&str> = component_regions
                    .iter()
                    .filter(|(_, r)| r != region)
                    .map(|(c, _)| c.as_str())
                    .collect();
                timeline
                    .iter()
                    .filter_map(|r| match &r.event {
                        AuditEvent::FlowChecked {
                            source,
                            destination,
                            source_context,
                            decision,
                            ..
                        } if decision.is_allowed()
                            && source_context.secrecy().contains(data_tag)
                            && outside.contains(destination.as_str()) =>
                        {
                            Some(Violation {
                                obligation: obligation.id(),
                                description: format!(
                                    "`{data_tag}` data flowed to {destination}, which is outside {region}"
                                ),
                                evidence_at_millis: Some(r.at_millis),
                                involved: vec![source.clone(), destination.clone()],
                            })
                        }
                        _ => None,
                    })
                    .collect()
            }
            Obligation::AnonymiseBeforeAnalytics { data_tag, anonymiser, analytics, .. } => {
                // Any data item tagged with the protected tag whose taint set reaches
                // the analytics consumer without the anonymiser appearing in it is a
                // violation.
                let mut violations = Vec::new();
                for item in provenance.items_with_secrecy_tag(data_tag) {
                    let taint = provenance.taint(&item.name);
                    let names: BTreeSet<&str> = taint.iter().map(|n| n.name.as_str()).collect();
                    if names.contains(analytics.as_str()) && !names.contains(anonymiser.as_str()) {
                        violations.push(Violation {
                            obligation: obligation.id(),
                            description: format!(
                                "`{}` reached {analytics} without passing through {anonymiser}",
                                item.name
                            ),
                            evidence_at_millis: None,
                            involved: vec![item.name.clone(), analytics.clone()],
                        });
                    }
                }
                violations
            }
            Obligation::Retention { store, retention_millis } => {
                // Evidence comes from DataDerived events at the store: an item recorded
                // at time t must have a corresponding purge actuation before t+retention
                // or before the end of the timeline.
                let horizon = timeline.last().map(|r| r.at_millis).unwrap_or(0);
                let purges: Vec<u64> = timeline
                    .iter()
                    .filter_map(|r| match &r.event {
                        AuditEvent::Reconfigured { component, action, accepted, .. }
                            if component == store && *accepted && action.contains("purge") =>
                        {
                            Some(r.at_millis)
                        }
                        _ => None,
                    })
                    .collect();
                timeline
                    .iter()
                    .filter_map(|r| match &r.event {
                        AuditEvent::DataDerived { output, process, .. }
                            if process == store
                                && horizon.saturating_sub(r.at_millis) > *retention_millis
                                && !purges.iter().any(|p| *p > r.at_millis) =>
                        {
                            Some(Violation {
                                obligation: obligation.id(),
                                description: format!(
                                    "item `{output}` stored by {store} at {}ms exceeded the {retention_millis}ms retention limit without a purge",
                                    r.at_millis
                                ),
                                evidence_at_millis: Some(r.at_millis),
                                involved: vec![output.clone(), store.clone()],
                            })
                        }
                        _ => None,
                    })
                    .collect()
            }
            Obligation::BreachNotification { data_tag, authority } => {
                let breaches: Vec<&AuditRecord> = timeline
                    .iter()
                    .filter(|r| match &r.event {
                        AuditEvent::FlowChecked { source_context, decision, .. } => {
                            decision.is_denied() && source_context.secrecy().contains(data_tag)
                        }
                        _ => false,
                    })
                    .collect();
                if breaches.is_empty() || notified_authorities.iter().any(|a| a == authority) {
                    Vec::new()
                } else {
                    vec![Violation {
                        obligation: obligation.id(),
                        description: format!(
                            "{} attempted disclosures of `{data_tag}` data were recorded but {authority} was not notified",
                            breaches.len()
                        ),
                        evidence_at_millis: breaches.first().map(|r| r.at_millis),
                        involved: breaches
                            .iter()
                            .flat_map(|r| r.event.entities())
                            .map(str::to_string)
                            .collect(),
                    }]
                }
            }
        }
    }

    /// Builds a liability report for a data item from the provenance graph: the agents
    /// controlling every process that touched the item or anything derived from it.
    pub fn liability(provenance: &ProvenanceGraph, data_item: &str) -> LiabilityReport {
        let agents =
            provenance.responsible_agents(data_item).into_iter().map(|n| n.name.clone()).collect();
        let processes = provenance
            .taint(data_item)
            .into_iter()
            .filter(|n| n.kind == NodeKind::Process)
            .map(|n| n.name.clone())
            .collect();
        LiabilityReport {
            data_item: data_item.to_string(),
            responsible_agents: agents,
            involved_processes: processes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use legaliot_audit::AuditEvent;
    use legaliot_ifc::{can_flow, SecurityContext};

    fn personal_ctx() -> SecurityContext {
        SecurityContext::from_names(["personal", "medical"], ["consent"])
    }

    fn log_with_flow(allowed: bool, destination: &str) -> AuditLog {
        let mut log = AuditLog::new("node");
        let src = personal_ctx();
        let dst = if allowed { personal_ctx() } else { SecurityContext::public() };
        log.record(
            AuditEvent::FlowChecked {
                source: "patient-records".into(),
                destination: destination.into(),
                source_context: src.clone(),
                destination_context: dst.clone(),
                decision: can_flow(&src, &dst),
                data_item: Some("record-1".into()),
            },
            100,
        );
        log
    }

    fn checker() -> ComplianceChecker {
        ComplianceChecker::new(RegulationSet::eu_style_data_protection("ann"))
    }

    #[test]
    fn consent_violation_detected_and_cleared_by_consent() {
        let log = log_with_flow(true, "analyser");
        let graph = ProvenanceGraph::new();
        let regions = vec![("analyser".to_string(), "eu".to_string())];
        let report = checker().check(&[&log], &graph, &regions, &[], &[]);
        assert!(!report.is_compliant());
        assert!(report.violations.iter().any(|v| v.obligation.starts_with("consent:ann")));
        // With consent recorded, the consent obligation is satisfied.
        let report = checker().check(&[&log], &graph, &regions, &["ann".to_string()], &[]);
        assert!(!report.violations.iter().any(|v| v.obligation.starts_with("consent:ann")));
        assert_eq!(report.obligations_checked, 5);
        assert_eq!(report.records_examined, 1);
        assert!(report.evidence_intact);
    }

    #[test]
    fn geo_residency_violation_detected() {
        let log = log_with_flow(true, "us-analytics");
        let graph = ProvenanceGraph::new();
        let regions = vec![("us-analytics".to_string(), "us".to_string())];
        let report = checker().check(&[&log], &graph, &regions, &["ann".to_string()], &[]);
        assert!(report.violations.iter().any(|v| v.obligation.starts_with("geo:")));
        // Same flow to an EU-located component is fine.
        let regions = vec![("us-analytics".to_string(), "eu".to_string())];
        let report = checker().check(&[&log], &graph, &regions, &["ann".to_string()], &[]);
        assert!(!report.violations.iter().any(|v| v.obligation.starts_with("geo:")));
    }

    #[test]
    fn anonymise_before_analytics_checked_on_provenance() {
        let mut bad = ProvenanceGraph::new();
        // Raw personal data reaches the ward manager directly.
        bad.record_derivation("raw-1", &[], "patient-records", "hospital", personal_ctx(), 1);
        bad.record_derivation("report", &["raw-1"], "ward-manager", "hospital", personal_ctx(), 2);
        let log = AuditLog::new("node");
        let report = checker().check(&[&log], &bad, &[], &["ann".to_string()], &[]);
        assert!(report
            .violations
            .iter()
            .any(|v| v.obligation.starts_with("anon-before-analytics")));

        let mut good = ProvenanceGraph::new();
        good.record_derivation("raw-1", &[], "patient-records", "hospital", personal_ctx(), 1);
        good.record_derivation(
            "anon-1",
            &["raw-1"],
            "stats-generator",
            "hospital",
            SecurityContext::public(),
            2,
        );
        good.record_derivation(
            "report",
            &["anon-1"],
            "ward-manager",
            "hospital",
            SecurityContext::public(),
            3,
        );
        let report = checker().check(&[&log], &good, &[], &["ann".to_string()], &[]);
        assert!(!report
            .violations
            .iter()
            .any(|v| v.obligation.starts_with("anon-before-analytics")));
    }

    #[test]
    fn breach_notification_required_after_denied_flows() {
        let log = log_with_flow(false, "advertiser");
        let graph = ProvenanceGraph::new();
        let report = checker().check(&[&log], &graph, &[], &["ann".to_string()], &[]);
        assert!(report.violations.iter().any(|v| v.obligation.starts_with("breach-notify")));
        let report =
            checker().check(&[&log], &graph, &[], &["ann".to_string()], &["regulator".to_string()]);
        assert!(!report.violations.iter().any(|v| v.obligation.starts_with("breach-notify")));
    }

    #[test]
    fn retention_violation_detected() {
        let mut log = AuditLog::new("node");
        log.record(
            AuditEvent::DataDerived {
                output: "old-record".into(),
                inputs: vec![],
                process: "archive".into(),
                agent: "hospital".into(),
                context: personal_ctx(),
            },
            0,
        );
        // A much later record moves the horizon far past the retention window.
        log.record(
            AuditEvent::PolicyFired { policy: "tick".into(), trigger: "tick".into(), actions: 0 },
            100 * 24 * 3600 * 1000,
        );
        let graph = ProvenanceGraph::new();
        let report =
            checker().check(&[&log], &graph, &[], &["ann".to_string()], &["regulator".into()]);
        assert!(report.violations.iter().any(|v| v.obligation.starts_with("retention")));
    }

    #[test]
    fn tampered_evidence_is_flagged() {
        let log = log_with_flow(true, "analyser");
        // AuditLog exposes no mutation of past records (by design); model an attacker
        // rewriting the serialised log at rest instead.
        let mut value = serde_json::to_value(&log).expect("serialise log");
        value["records"][0]["at_millis"] = serde_json::json!(999_999);
        let tampered: AuditLog = serde_json::from_value(value).expect("deserialise log");
        let graph = ProvenanceGraph::new();
        let report =
            checker().check(&[&tampered], &graph, &[], &["ann".to_string()], &["regulator".into()]);
        assert!(!report.evidence_intact);
        assert!(!report.is_compliant());
    }

    #[test]
    fn liability_report_names_agents_and_processes() {
        let mut graph = ProvenanceGraph::new();
        graph.record_derivation("raw-1", &[], "patient-records", "hospital", personal_ctx(), 1);
        graph.record_derivation(
            "leak",
            &["raw-1"],
            "exporter",
            "cloud-provider",
            personal_ctx(),
            2,
        );
        let report = ComplianceChecker::liability(&graph, "raw-1");
        assert_eq!(report.data_item, "raw-1");
        assert!(report.responsible_agents.contains(&"hospital".to_string()));
        assert!(report.responsible_agents.contains(&"cloud-provider".to_string()));
        assert!(report.involved_processes.contains(&"exporter".to_string()));
    }

    #[test]
    fn display_and_report_helpers() {
        let v = Violation {
            obligation: "geo:personal:eu".into(),
            description: "left the eu".into(),
            evidence_at_millis: Some(1),
            involved: vec![],
        };
        assert!(v.to_string().contains("geo:personal:eu"));
        let report = ComplianceReport {
            regulation: "r".into(),
            violations: vec![],
            records_examined: 0,
            obligations_checked: 0,
            evidence_intact: true,
        };
        assert!(report.is_compliant());
        assert_eq!(checker().regulation().name, "eu-data-protection");
    }
}
