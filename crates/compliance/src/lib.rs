//! # legaliot-compliance
//!
//! The legal-compliance layer of Fig. 1: machine-readable obligations derived from law
//! and regulation, their compilation into tags and policy rules, and compliance checking
//! against the audit evidence the enforcement layers produce.
//!
//! "Law and regulation, reflecting responsibilities and obligations, together with
//! personal preferences, must be embodied in policy, which technical mechanisms must
//! enforce system-wide. … the audit of its enforcement, particularly regarding data flow
//! and processing, is necessary to demonstrate compliance." (§1)
//!
//! * [`Obligation`] — representative obligations (consent, geo-residency, purpose
//!   limitation / anonymise-before-analytics, retention, breach notification);
//! * [`RegulationSet`] — a named body of obligations (e.g. an EU-style data-protection
//!   regime) that can be compiled into [`legaliot_policy::PolicyRule`]s and required
//!   tags;
//! * [`ComplianceChecker`] — checks a merged audit timeline plus provenance graph
//!   against the obligations, producing [`Violation`]s and a [`ComplianceReport`];
//! * [`LiabilityReport`] — apportions responsibility for a violation to the agents that
//!   controlled the processes involved (Fig. 11 / §8.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod regulation;

pub use checker::{ComplianceChecker, ComplianceReport, LiabilityReport, Violation};
pub use regulation::{Obligation, RegulationSet};
