//! Machine-readable obligations and regulation sets.

use std::fmt;

use serde::{Deserialize, Serialize};

use legaliot_ifc::Tag;
use legaliot_policy::{PolicyRule, PolicyTemplate};

/// A single legal/regulatory obligation, parameterised for compilation into policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Obligation {
    /// Personal data of `subject` (identified by `data_tag`) may only be processed with
    /// recorded consent.
    ConsentRequired {
        /// Tag identifying the subject's data.
        data_tag: Tag,
        /// The data subject.
        subject: String,
    },
    /// Data carrying `data_tag` must remain within components located in `region`.
    GeoResidency {
        /// Tag identifying the regulated data.
        data_tag: Tag,
        /// The region name (matched against `<component>.in-<region>` context keys and
        /// node domains).
        region: String,
    },
    /// Data carrying `data_tag` may reach analytics consumers only after passing
    /// through an approved anonymiser (purpose limitation, Fig. 6).
    AnonymiseBeforeAnalytics {
        /// Tag identifying the raw personal data.
        data_tag: Tag,
        /// The approved anonymising component.
        anonymiser: String,
        /// The analytics consumer it protects.
        analytics: String,
        /// The raw data source.
        source: String,
    },
    /// Data held by `store` must not be retained longer than `retention_millis`.
    Retention {
        /// The storage component.
        store: String,
        /// Maximum retention in simulated milliseconds.
        retention_millis: u64,
    },
    /// Denied flows of data carrying `data_tag` must be reported to `authority`
    /// (breach/incident notification).
    BreachNotification {
        /// Tag identifying the protected data.
        data_tag: Tag,
        /// Who must be notified.
        authority: String,
    },
}

impl Obligation {
    /// A short, stable identifier for the obligation (used in violation reports).
    pub fn id(&self) -> String {
        match self {
            Obligation::ConsentRequired { subject, data_tag } => {
                format!("consent:{subject}:{data_tag}")
            }
            Obligation::GeoResidency { data_tag, region } => format!("geo:{data_tag}:{region}"),
            Obligation::AnonymiseBeforeAnalytics { data_tag, analytics, .. } => {
                format!("anon-before-analytics:{data_tag}:{analytics}")
            }
            Obligation::Retention { store, retention_millis } => {
                format!("retention:{store}:{retention_millis}")
            }
            Obligation::BreachNotification { data_tag, authority } => {
                format!("breach-notify:{data_tag}:{authority}")
            }
        }
    }

    /// The tags this obligation requires the middleware/tag-registry to define.
    pub fn required_tags(&self) -> Vec<Tag> {
        match self {
            Obligation::ConsentRequired { data_tag, .. }
            | Obligation::GeoResidency { data_tag, .. }
            | Obligation::AnonymiseBeforeAnalytics { data_tag, .. }
            | Obligation::BreachNotification { data_tag, .. } => vec![data_tag.clone()],
            Obligation::Retention { .. } => Vec::new(),
        }
    }

    /// Compiles the obligation into enforcement-time policy rules (where a rule-level
    /// encoding exists). Some obligations are checked only retrospectively over audit
    /// logs and produce no rules.
    pub fn compile(&self, authority: &str) -> Vec<PolicyRule> {
        match self {
            Obligation::ConsentRequired { data_tag, subject } => PolicyTemplate::ConsentRequired {
                data_tag: data_tag.clone(),
                subject: subject.clone(),
                authority: authority.to_string(),
            }
            .expand(),
            Obligation::GeoResidency { data_tag, region } => PolicyTemplate::GeoFence {
                data_tag: data_tag.clone(),
                region: region.clone(),
                authority: authority.to_string(),
            }
            .expand(),
            Obligation::AnonymiseBeforeAnalytics { data_tag, anonymiser, analytics, source } => {
                PolicyTemplate::AnonymiseBeforeAnalytics {
                    data_tag: data_tag.clone(),
                    source: source.clone(),
                    anonymiser: anonymiser.clone(),
                    analytics: analytics.clone(),
                    authority: authority.to_string(),
                }
                .expand()
            }
            Obligation::Retention { store, retention_millis } => PolicyTemplate::Retention {
                store: store.clone(),
                retention_millis: *retention_millis,
                authority: authority.to_string(),
            }
            .expand(),
            Obligation::BreachNotification { .. } => Vec::new(),
        }
    }
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// A named body of obligations imposed by one authority (regulator, contract, DPO).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegulationSet {
    /// The regulation's name, e.g. `eu-data-protection`.
    pub name: String,
    /// The authority imposing it.
    pub authority: String,
    /// The obligations it contains.
    pub obligations: Vec<Obligation>,
}

impl RegulationSet {
    /// Creates an empty regulation set.
    pub fn new(name: impl Into<String>, authority: impl Into<String>) -> Self {
        RegulationSet { name: name.into(), authority: authority.into(), obligations: Vec::new() }
    }

    /// Adds an obligation.
    pub fn with(mut self, obligation: Obligation) -> Self {
        self.obligations.push(obligation);
        self
    }

    /// Compiles every obligation into policy rules, attributed to this regulation's
    /// authority.
    pub fn compile(&self) -> Vec<PolicyRule> {
        self.obligations.iter().flat_map(|o| o.compile(&self.authority)).collect()
    }

    /// All tags the regulation requires to exist.
    pub fn required_tags(&self) -> Vec<Tag> {
        let mut tags: Vec<Tag> =
            self.obligations.iter().flat_map(Obligation::required_tags).collect();
        tags.sort();
        tags.dedup();
        tags
    }

    /// A representative EU-style data-protection regime used by the examples and
    /// scenarios: consent + residency + anonymise-before-analytics + retention +
    /// breach notification for data tagged `personal`.
    pub fn eu_style_data_protection(subject: &str) -> Self {
        RegulationSet::new("eu-data-protection", "eu-regulator")
            .with(Obligation::ConsentRequired {
                data_tag: Tag::new("personal"),
                subject: subject.to_string(),
            })
            .with(Obligation::GeoResidency {
                data_tag: Tag::new("personal"),
                region: "eu".to_string(),
            })
            .with(Obligation::AnonymiseBeforeAnalytics {
                data_tag: Tag::new("personal"),
                anonymiser: "stats-generator".to_string(),
                analytics: "ward-manager".to_string(),
                source: "patient-records".to_string(),
            })
            .with(Obligation::Retention {
                store: "archive".to_string(),
                retention_millis: 30 * 24 * 3600 * 1000,
            })
            .with(Obligation::BreachNotification {
                data_tag: Tag::new("personal"),
                authority: "regulator".to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obligation_ids_are_distinct_and_stable() {
        let a =
            Obligation::ConsentRequired { data_tag: Tag::new("personal"), subject: "ann".into() };
        let b = Obligation::GeoResidency { data_tag: Tag::new("personal"), region: "eu".into() };
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), "consent:ann:personal");
        assert_eq!(a.to_string(), a.id());
    }

    #[test]
    fn required_tags_collects_data_tags() {
        let reg = RegulationSet::eu_style_data_protection("ann");
        let tags = reg.required_tags();
        assert_eq!(tags, vec![Tag::new("personal")]);
        assert!(Obligation::Retention { store: "s".into(), retention_millis: 1 }
            .required_tags()
            .is_empty());
    }

    #[test]
    fn compile_expands_rule_bearing_obligations() {
        let reg = RegulationSet::eu_style_data_protection("ann");
        let rules = reg.compile();
        // consent(1) + geo(1) + anonymise(1) + retention(1) = 4; breach notification is
        // checked retrospectively and contributes no rules.
        assert_eq!(rules.len(), 4);
        assert!(rules.iter().all(|r| r.authority == "eu-regulator"));
        assert!(Obligation::BreachNotification {
            data_tag: Tag::new("personal"),
            authority: "reg".into()
        }
        .compile("x")
        .is_empty());
    }

    #[test]
    fn regulation_set_builders() {
        let reg = RegulationSet::new("contract-42", "hospital")
            .with(Obligation::Retention { store: "archive".into(), retention_millis: 10 });
        assert_eq!(reg.obligations.len(), 1);
        assert_eq!(reg.name, "contract-42");
        assert_eq!(reg.compile().len(), 1);
    }
}
