//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Backs `StdRng` with the SplitMix64 generator — deterministic, seedable and
//! statistically adequate for the simulation workloads in this workspace. Only
//! the methods the repo calls are provided: `seed_from_u64`, `gen`, `gen_bool`
//! and `gen_range` over integer and float ranges.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values producible uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Returns a generator seeded from the system clock; use `seed_from_u64` for
/// reproducible runs.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(55..110);
            assert!((55..110).contains(&v));
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
