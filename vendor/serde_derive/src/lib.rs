//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored `serde` crate's `Value`-tree model. The input item is parsed by
//! hand from the raw `TokenStream` (no `syn`/`quote` available offline), which
//! is sufficient for the shapes this workspace uses: non-generic structs with
//! named fields, tuple/newtype structs, and enums whose variants are unit,
//! tuple, or struct-like. The generated JSON layout matches real serde's
//! externally-tagged defaults, so the code can migrate to the real crates
//! without a data-format change.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    /// `#[serde(transparent)]` single-named-field struct: serialises as the
    /// field's value alone, like real serde. Never used for enum variants.
    TransparentNamed(String),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body =
                serialize_struct_body(shape, |i| format!("&self.{}", field_access(shape, i)));
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> =
                variants.iter().map(|v| serialize_variant_arm(name, v)).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("derive(Serialize): generated code failed to parse")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = deserialize_struct_body(name, name, shape);
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("derive(Deserialize): generated code failed to parse")
}

// ---------------------------------------------------------------------------
// Code generation — Serialize
// ---------------------------------------------------------------------------

fn field_access(shape: &Shape, idx: usize) -> String {
    match shape {
        Shape::Named(fields) => fields[idx].clone(),
        Shape::TransparentNamed(field) => field.clone(),
        _ => idx.to_string(),
    }
}

/// Body of `to_value` for a struct shape; `access(i)` yields an expression
/// evaluating to `&FieldType` for field `i`.
fn serialize_struct_body(shape: &Shape, access: impl Fn(usize) -> String) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        // Newtype and transparent structs serialise as their inner value,
        // like serde's default for newtypes and `#[serde(transparent)]`.
        Shape::Tuple(1) | Shape::TransparentNamed(_) => {
            format!("::serde::Serialize::to_value({})", access(0))
        }
        Shape::Tuple(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value({})", access(i))).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let mut out = String::from("let mut map = ::serde::Map::new();\n");
            for (i, field) in fields.iter().enumerate() {
                out.push_str(&format!(
                    "map.insert(\"{field}\".to_string(), ::serde::Serialize::to_value({}));\n",
                    access(i)
                ));
            }
            out.push_str("::serde::Value::Object(map)");
            out
        }
    }
}

fn variant_bindings(shape: &Shape) -> (String, Vec<String>) {
    match shape {
        Shape::Unit => (String::new(), Vec::new()),
        Shape::Tuple(n) => {
            let names: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            (format!("({})", names.join(", ")), names)
        }
        Shape::Named(fields) => (format!("{{ {} }}", fields.join(", ")), fields.clone()),
        Shape::TransparentNamed(_) => unreachable!("transparent applies only to structs"),
    }
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    let (pattern, bindings) = variant_bindings(&variant.shape);
    let payload = match &variant.shape {
        // Unit variants serialise as a bare string, per serde's external tagging.
        Shape::Unit => {
            return format!(
                "{enum_name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
            );
        }
        Shape::Tuple(1) => format!("::serde::Serialize::to_value({})", bindings[0]),
        Shape::Tuple(_) => {
            let items: Vec<String> =
                bindings.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Named(fields) => {
            let mut out = String::from("{ let mut inner = ::serde::Map::new();\n");
            for field in fields {
                out.push_str(&format!(
                    "inner.insert(\"{field}\".to_string(), ::serde::Serialize::to_value({field}));\n"
                ));
            }
            out.push_str("::serde::Value::Object(inner) }");
            out
        }
        Shape::TransparentNamed(_) => unreachable!("transparent applies only to structs"),
    };
    format!(
        "{enum_name}::{vname}{pattern} => {{\n\
             let mut map = ::serde::Map::new();\n\
             map.insert(\"{vname}\".to_string(), {payload});\n\
             ::serde::Value::Object(map)\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation — Deserialize
// ---------------------------------------------------------------------------

/// Emits an expression of type `Result<..., Error>` constructing `constructor`
/// (e.g. `Name` or `Name::Variant`) from the `Value` named by local `value`.
fn deserialize_struct_body(label: &str, constructor: &str, shape: &Shape) -> String {
    match shape {
        Shape::Unit => format!("{{ let _ = value; Ok({constructor}) }}"),
        Shape::Tuple(1) => format!(
            "Ok({constructor}(::serde::Deserialize::from_value(value)\
                 .map_err(|e| e.context(\"{label}\"))?))"
        ),
        Shape::TransparentNamed(field) => format!(
            "Ok({constructor} {{ {field}: ::serde::Deserialize::from_value(value)\
                 .map_err(|e| e.context(\"{label}\"))? }})"
        ),
        Shape::Tuple(n) => {
            let mut out = format!(
                "{{ let items = value.as_array().ok_or_else(|| \
                     ::serde::Error::custom(format!(\"{label}: expected array, found {{}}\", value.kind())))?;\n\
                   if items.len() != {n} {{\n\
                       return Err(::serde::Error::custom(format!(\
                           \"{label}: expected {n} elements, found {{}}\", items.len())));\n\
                   }}\n\
                   Ok({constructor}("
            );
            let items: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(&items[{i}])\
                             .map_err(|e| e.context(\"{label}.{i}\"))?"
                    )
                })
                .collect();
            out.push_str(&items.join(", "));
            out.push_str(")) }");
            out
        }
        Shape::Named(fields) => {
            let mut out = format!(
                "{{ let obj = value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(format!(\"{label}: expected object, found {{}}\", value.kind())))?;\n\
                   Ok({constructor} {{\n"
            );
            for field in fields {
                out.push_str(&format!(
                    "{field}: ::serde::Deserialize::from_value(\
                         obj.get(\"{field}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.context(\"{label}.{field}\"))?,\n"
                ));
            }
            out.push_str("}) }");
            out
        }
    }
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter(|v| !matches!(v.shape, Shape::Unit))
        .map(|v| {
            let label = format!("{name}::{}", v.name);
            let body = deserialize_struct_body(&label, &label, &v.shape);
            format!("\"{}\" => {{ let value = inner; {body} }}", v.name)
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::custom(format!(\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                         let (tag, inner) = map.iter().next().expect(\"len checked\");\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::custom(format!(\
                         \"expected {name} variant, found {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        tagged_arms = tagged_arms.join("\n"),
    )
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let transparent = scan_item_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);

    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported by the vendored serde_derive");
    }

    match keyword.as_str() {
        "struct" => {
            let mut shape = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            // `#[serde(transparent)]` on a single-field struct serialises as
            // the field alone (newtype structs already do, like real serde).
            if transparent {
                match &shape {
                    Shape::Named(fields) if fields.len() == 1 => {
                        shape = Shape::TransparentNamed(fields[0].clone());
                    }
                    Shape::Tuple(1) => {}
                    other => panic!(
                        "derive: #[serde(transparent)] on `{name}` requires exactly one field, found {other:?}"
                    ),
                }
            }
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match tokens.get(pos) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("derive: expected enum body, found {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("derive: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Skips `#[...]` attributes (doc comments included) at the cursor.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *pos += 1;
        }
    }
}

/// Skips item-level attributes like [`skip_attributes`], additionally
/// reporting whether `#[serde(transparent)]` is among them. Any other
/// `#[serde(...)]` argument is rejected rather than silently ignored.
fn scan_item_attributes(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut transparent = false;
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        if let Some(TokenTree::Group(attr)) = tokens.get(*pos) {
            if attr.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
                if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                    let Some(TokenTree::Group(args)) = inner.get(1) else {
                        panic!("derive: malformed #[serde] attribute");
                    };
                    for arg in args.stream() {
                        match &arg {
                            TokenTree::Ident(i) if i.to_string() == "transparent" => {
                                transparent = true;
                            }
                            TokenTree::Punct(p) if p.as_char() == ',' => {}
                            other => panic!(
                                "derive: #[serde({other})] is not supported by the vendored serde_derive"
                            ),
                        }
                    }
                }
                *pos += 1;
            }
        }
    }
    transparent
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` at the cursor.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("derive: expected identifier, found {other:?}"),
    }
}

/// Advances past one type expression: consumes tokens until a `,` at
/// angle-bracket depth zero (groups are single trees, so only `<`/`>` nest).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("derive: expected `:` after field name, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // consume the comma (or run off the end on the last field)
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        count += 1;
        skip_type(&tokens, &mut pos);
        pos += 1; // consume the comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let shape = Shape::Named(parse_named_fields(g.stream()));
                pos += 1;
                shape
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let shape = Shape::Tuple(count_tuple_fields(g.stream()));
                pos += 1;
                shape
            }
            _ => Shape::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the separating comma.
        while let Some(token) = tokens.get(pos) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            pos += 1;
        }
        pos += 1; // consume the comma
        variants.push(Variant { name, shape });
    }
    variants
}
