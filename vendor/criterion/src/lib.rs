//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the Criterion API the workspace benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched` and `BenchmarkId` — on top of a small wall-clock measurement
//! loop. Results print as `<group>/<id>  median <time>` lines. Statistical
//! analysis, plots and baselines of the real crate are intentionally out of
//! scope; the harness exists so `cargo bench` keeps compiling and produces
//! usable relative numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, configured once per `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self, id, f);
        self
    }
}

/// A named set of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &label, |bencher| f(bencher, input));
        self
    }

    /// Finishes the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark, e.g. `allowed/64`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// Uses the parameter value alone as the identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion into a display label for a benchmark.
pub trait IntoBenchmarkId {
    /// Returns the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Hint for how much setup output to batch in `iter_batched`; the stub times
/// setup out-of-line regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every routine call.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher<'a> {
    config: &'a Criterion,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample is long enough to time.
        let mut batch = 1u64;
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if Instant::now() >= warm_up_end {
                if elapsed < Duration::from_micros(50) && batch < (1 << 30) {
                    batch *= 2;
                    continue;
                }
                break;
            }
            if elapsed < Duration::from_micros(50) && batch < (1 << 30) {
                batch *= 2;
            }
        }

        let per_sample_budget = self.config.measurement_time / self.config.sample_size as u32;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            let mut iterations = 0u64;
            while iterations < batch {
                black_box(routine());
                iterations += 1;
            }
            let mut elapsed = start.elapsed();
            // Keep sampling within the budget for very fast routines.
            while elapsed < per_sample_budget / 4 {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                elapsed += start.elapsed();
                iterations += batch;
            }
            self.samples.push(elapsed / iterations as u32);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine(setup()));
        }
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, label: &str, mut f: F) {
    let mut bencher = Bencher { config: criterion, samples: Vec::new() };
    f(&mut bencher);
    bencher.samples.sort();
    let median = bencher.samples.get(bencher.samples.len() / 2).copied().unwrap_or_default();
    println!("{label:<60} median {}", format_duration(median));
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        criterion.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn iter_batched_produces_samples() {
        let mut criterion = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        criterion.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
