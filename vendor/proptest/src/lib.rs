//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros the workspace's property
//! tests use, backed by deterministic random sampling (256 cases per test,
//! seeded from the test name so runs are reproducible). Shrinking and
//! persistence of failing cases are out of scope; a failure reports the case
//! number and seed instead.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of random cases each `proptest!` test runs.
pub const CASES: u32 = 256;

/// Error raised by the `prop_assert*` macros inside a property test body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// A generator of random values of type `Value`.
///
/// Object-safe core (`generate`) plus sized combinators, so strategies can be
/// boxed by `prop_oneof!`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over the given strategies.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// String strategies from a simplified regex: a single character class with
/// optional `{m,n}` repetition, e.g. `"[a-e]{1,3}"` or `"[a-c]"`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (alphabet, min, max) = parse_simple_regex(self);
        let len = rng.gen_range(min..max + 1);
        (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_simple_regex(pattern: &str) -> (Vec<char>, usize, usize) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`: expected `[class]{{m,n}}`"));
    let (class, rest) = rest
        .split_once(']')
        .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`: unterminated class"));

    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        if chars.peek() == Some(&'-') {
            chars.next();
            let end = chars
                .next()
                .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`: dangling range"));
            alphabet.extend((c..=end).collect::<Vec<char>>());
        } else {
            alphabet.push(c);
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in `{pattern}`");

    if rest.is_empty() {
        return (alphabet, 1, 1);
    }
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported pattern `{pattern}`: expected `{{m,n}}`"));
    let (min, max) = counts.split_once(',').unwrap_or((counts, counts));
    let min: usize = min.trim().parse().expect("invalid repetition lower bound");
    let max: usize = max.trim().parse().expect("invalid repetition upper bound");
    assert!(min <= max, "invalid repetition range in `{pattern}`");
    (alphabet, min, max)
}

/// Collection sizes: a fixed count or a half-open range.
pub trait IntoSizeRange {
    /// Converts into `(min, max_exclusive)`.
    fn into_size_range(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.into_size_range();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of values from `element`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates sets with target sizes drawn from `size` (duplicates collapse,
    /// so the result may be smaller, as with real proptest before rejection).
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (min, max) = size.into_size_range();
        BTreeSetStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let len = rng.gen_range(self.min..self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::*;

    /// Uniform boolean strategy.
    pub struct Any;

    /// Uniform boolean strategy value, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::std::primitive::bool;

        fn generate(&self, rng: &mut StdRng) -> ::std::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runs one property test: used by the `proptest!` macro expansion.
pub fn run_property_test<F: FnMut(&mut StdRng) -> Result<(), TestCaseError>>(
    name: &str,
    mut case: F,
) {
    // Seed from the test name so each test gets a distinct but stable stream.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case_index in 0..CASES {
        let case_seed = seed.wrapping_add(case_index as u64);
        let mut rng = StdRng::seed_from_u64(case_seed);
        if let Err(error) = case(&mut rng) {
            panic!("property `{name}` failed at case {case_index} (seed {case_seed:#x}): {error}");
        }
    }
}

/// Declares property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property_test(stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                $body
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({left:?} vs {right:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {left:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, Strategy,
        TestCaseError,
    };
    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_strategies_respect_shape() {
        let (alphabet, min, max) = super::parse_simple_regex("[a-e]{1,3}");
        assert_eq!(alphabet, vec!['a', 'b', 'c', 'd', 'e']);
        assert_eq!((min, max), (1, 3));
        let (alphabet, min, max) = super::parse_simple_regex("[a-c]");
        assert_eq!(alphabet, vec!['a', 'b', 'c']);
        assert_eq!((min, max), (1, 1));
    }

    proptest! {
        #[test]
        fn generated_strings_match_class(s in "[a-d]{1,3}") {
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='d').contains(&c)));
        }

        #[test]
        fn oneof_and_collections_compose(
            pick in prop_oneof![Just(1), Just(2)],
            items in collection::vec(0u64..10, 0..5),
            set in collection::btree_set("[a-b]", 0..4),
        ) {
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(items.len() < 5);
            prop_assert!(set.len() < 4);
        }
    }
}
