//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors a
//! minimal serialisation framework under the same crate name. It keeps the
//! user-facing surface the repo relies on — `use serde::{Serialize, Deserialize}`
//! plus `#[derive(Serialize, Deserialize)]` — but is built around a concrete
//! JSON-like [`Value`] tree instead of serde's generic `Serializer`/`Deserializer`
//! visitors. `serde_json` (also vendored) re-exports [`Value`] and implements the
//! text round trip. Swapping in the real crates later only requires changing
//! `[workspace.dependencies]`; call sites stay unchanged.

mod impls;
mod value;

pub use value::{Map, Value};

/// Re-export of the derive macros so `#[derive(serde::Serialize)]` works exactly
/// like with the real crate (the trait and the macro share a name on purpose,
/// mirroring serde's own `derive` feature).
pub use serde_derive::{Deserialize, Serialize};

/// Serialisation/deserialisation error: a message plus a reverse path of the
/// fields that were being visited when the failure happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    path: Vec<String>,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl std::fmt::Display) -> Self {
        Error { message: message.to_string(), path: Vec::new() }
    }

    /// Returns a copy of the error with `segment` pushed onto the field path.
    pub fn context(mut self, segment: impl Into<String>) -> Self {
        self.path.push(segment.into());
        self
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            let mut path: Vec<&str> = self.path.iter().map(String::as_str).collect();
            path.reverse();
            write!(f, "{}: {}", path.join("."), self.message)
        }
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialises an instance from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}
