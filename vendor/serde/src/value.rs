//! The JSON-like data model shared by the vendored `serde` and `serde_json`.

use std::collections::BTreeMap;
use std::ops::{Index, IndexMut};

/// Object representation: field name to value.
pub type Map = BTreeMap<String, Value>;

/// A JSON-like value tree.
///
/// Signed and unsigned integers are kept as distinct variants so that `u64`
/// payloads (e.g. hash-chain digests above `i64::MAX`) round-trip losslessly;
/// cross-variant comparisons and conversions treat them as one numeric domain.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside (or kept apart from) the `i64` range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array of values.
    Array(Vec<Value>),
    /// String-keyed object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns `true` when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrows the object map, if this is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutably borrows the array elements, if this is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `i64`, converting between the numeric variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// Numeric view as `u64`, converting between the numeric variants.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// One-word description of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Object field access; missing keys and non-objects read as `Null`,
    /// matching `serde_json`'s behaviour.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<&str> for Value {
    /// Object field access for writing; inserts `Null` for a missing key,
    /// matching `serde_json`. Panics when the value is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {} with a string key", other.kind()),
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Array element access; out-of-bounds and non-arrays read as `Null`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<usize> for Value {
    /// Array element access for writing. Panics when the value is not an
    /// array or the index is out of bounds (as `serde_json` does).
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => {
                let len = a.len();
                a.get_mut(idx).unwrap_or_else(|| panic!("index {idx} out of bounds (len {len})"))
            }
            other => panic!("cannot index {} with a numeric index", other.kind()),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Int(i),
            Err(_) => Value::UInt(v),
        }
    }
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32);

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}
