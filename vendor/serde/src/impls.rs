//! `Serialize`/`Deserialize` implementations for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};

use crate::{Deserialize, Error, Map, Serialize, Value};

// ---------------------------------------------------------------------------
// Scalars
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {}", value.kind())))
    }
}

macro_rules! int_impl {
    ($($t:ty => $via:ident),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = value.$via().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        value.kind()
                    ))
                })?;
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}
int_impl!(i8 => as_i64, i16 => as_i64, i32 => as_i64, i64 => as_i64, isize => as_i64);
int_impl!(u8 => as_u64, u16 => as_u64, u32 => as_u64, u64 => as_u64, usize => as_u64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected float, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, found {}", value.kind())))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected a single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(())
        } else {
            Err(Error::custom(format!("expected null, found {}", value.kind())))
        }
    }
}

// ---------------------------------------------------------------------------
// Pointers and wrappers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A generic `Arc<T>` impl would conflict with this one under coherence; the
// only `Arc` payload the workspace deserialises is `str`.
impl Deserialize for std::sync::Arc<str> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        String::from_value(value).map(std::sync::Arc::from)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

fn sequence<'v, T: Deserialize>(
    value: &'v Value,
) -> Result<impl Iterator<Item = Result<T, Error>> + 'v, Error> {
    let items = value
        .as_array()
        .ok_or_else(|| Error::custom(format!("expected array, found {}", value.kind())))?;
    Ok(items
        .iter()
        .enumerate()
        .map(|(i, item)| T::from_value(item).map_err(|e| e.context(format!("[{i}]")))))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        sequence(value)?.collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        sequence(value)?.collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        sequence(value)?.collect()
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        sequence(value)?.collect()
    }
}

// ---------------------------------------------------------------------------
// Maps — keys must serialise to strings, as in JSON.
// ---------------------------------------------------------------------------

fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        other => panic!("map keys must serialise to strings, got {}", other.kind()),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    K::from_value(&Value::String(key.to_string())).map_err(|e| e.context(format!("key `{key}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        obj.iter()
            .map(|(k, v)| {
                Ok((key_from_string(k)?, V::from_value(v).map_err(|e| e.context(k.clone()))?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        obj.iter()
            .map(|(k, v)| {
                Ok((key_from_string(k)?, V::from_value(v).map_err(|e| e.context(k.clone()))?))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_impl {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| {
                    Error::custom(format!("expected array, found {}", value.kind()))
                })?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected a tuple of {} elements, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx]).map_err(|e| e.context($idx.to_string()))?,)+))
            }
        }
    };
}
tuple_impl!(1 => A.0);
tuple_impl!(2 => A.0, B.1);
tuple_impl!(3 => A.0, B.1, C.2);
tuple_impl!(4 => A.0, B.1, C.2, D.3);

// ---------------------------------------------------------------------------
// Value itself
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs".to_string(), Value::from(self.as_secs()));
        map.insert("nanos".to_string(), Value::from(self.subsec_nanos()));
        Value::Object(map)
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {}", value.kind())))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("missing `secs`"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::custom("missing `nanos`"))?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}
