//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronisation primitives behind parking_lot's non-poisoning
//! API (`lock()`/`read()`/`write()` return guards directly). A poisoned std
//! lock only occurs after a panic while holding the guard; this shim recovers
//! the inner data in that case, matching parking_lot's behaviour of never
//! poisoning.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (requires `&mut self`,
    /// so no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let lock = Mutex::new(vec![1]);
        lock.lock().push(2);
        assert_eq!(*lock.lock(), vec![1, 2]);
    }
}
