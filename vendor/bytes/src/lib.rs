//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer backed by
//! `Arc<[u8]>` (the real crate adds sub-slicing windows; nothing here needs
//! them). Serde support matches the real crate's `serde` feature: the buffer
//! round-trips as an array of numbers.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable, immutable slice of bytes.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for escaped in std::ascii::escape_default(b) {
                write!(f, "{}", escaped as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::from(data) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from_static(data.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(data: String) -> Self {
        Bytes::from(data.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl serde::Serialize for Bytes {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(self.data.iter().map(|&b| serde::Value::Int(b as i64)).collect())
    }
}

impl serde::Deserialize for Bytes {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Vec::<u8>::from_value(value).map(Bytes::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&*b, &[1, 2, 3]);
    }

    #[test]
    fn serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let a = Bytes::from_static(b"reading");
        let back = Bytes::from_value(&a.to_value()).unwrap();
        assert_eq!(a, back);
    }
}
