//! Offline stand-in for `serde_json`, built on the vendored `serde` crate's
//! [`Value`] tree. Provides the subset this workspace uses — `to_value`,
//! `from_value`, the `json!` macro, plus `to_string`/`to_string_pretty` and
//! `from_str` for text round trips.

pub use serde::{Error, Map, Value};

use serde::{Deserialize, Serialize};

/// Serialises any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Serialises a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports `null`, array and object literals, and any expression convertible
/// into a `Value` via `From` (numbers, booleans, strings, nested `Value`s).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($element) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from integers.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_separator(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_separator(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_separator(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !map.is_empty() {
                write_separator(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_separator(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", byte as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            map.insert(key, self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"') | Some(b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = match code {
                                // High surrogate: must pair with a following
                                // `\uDC00`–`\uDFFF` low surrogate.
                                0xd800..=0xdbff => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(Error::custom("unpaired high surrogate"));
                                    }
                                    let low = self.parse_hex4(self.pos + 3)?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(Error::custom("invalid low surrogate"));
                                    }
                                    self.pos += 6;
                                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                                }
                                0xdc00..=0xdfff => {
                                    return Err(Error::custom("unpaired low surrogate"));
                                }
                                code => code,
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                None => return Err(Error::custom("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let value = json!({
            "name": "ann",
            "count": 3,
            "nested": [1, 2, 3],
            "flag": true,
            "nothing": null
        });
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(value, back);
    }

    #[test]
    fn surrogate_pairs_decode() {
        // A non-BMP character escaped as a UTF-16 surrogate pair, as real
        // serde_json and most JSON producers emit it.
        let parsed: String = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(parsed, "\u{1f600}");
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ude00""#).is_err());
    }

    #[test]
    fn u64_digests_survive_round_trip() {
        let big = u64::MAX - 1;
        let text = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&text).unwrap(), big);
    }
}
